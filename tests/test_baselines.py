"""Unit tests for the GPU models, gSLIC, and Preemptive SLIC baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CORE_I7_4600M,
    GpuSlicModel,
    TEGRA_K1,
    TESLA_K20,
    gslic,
    preemptive_slic,
    preemptive_sslic,
    table5_comparison,
)
from repro.errors import ConfigurationError
from repro.hw import AcceleratorModel, process_normalization_factor, table4_configs
from repro.metrics import undersegmentation_error

N_1080P = 1920 * 1080


class TestGpuModel:
    def test_k20_latency_matches_measurement(self):
        model = GpuSlicModel(TESLA_K20)
        assert model.predict_latency_ms(N_1080P, 5000) == pytest.approx(22.3, rel=0.01)

    def test_tk1_latency_matches_measurement(self):
        model = GpuSlicModel(TEGRA_K1)
        assert model.predict_latency_ms(N_1080P, 5000) == pytest.approx(2713, rel=0.01)

    def test_both_gpus_memory_bound(self):
        for dev in (TESLA_K20, TEGRA_K1):
            assert GpuSlicModel(dev).bound_type(N_1080P, 5000) == "memory"

    def test_roofline_bound_below_prediction(self):
        model = GpuSlicModel(TESLA_K20)
        assert model.roofline_bound_ms(N_1080P, 5000) < model.predict_latency_ms(
            N_1080P, 5000
        )

    def test_normalization_factor(self):
        assert process_normalization_factor() == pytest.approx(2.1875)

    def test_k20_fast_but_power_hungry(self):
        row = GpuSlicModel(TESLA_K20).platform_row(N_1080P, 5000)
        assert row.real_time
        assert row.avg_power_w > 50

    def test_tk1_misses_real_time_badly(self):
        """Paper: TK1 'misses the real-time frame rate by a factor of 80'."""
        row = GpuSlicModel(TEGRA_K1).platform_row(N_1080P, 5000)
        assert row.latency_ms / (1000 / 30) == pytest.approx(81, rel=0.05)

    def test_iterations_validated(self):
        with pytest.raises(ConfigurationError):
            GpuSlicModel(TESLA_K20, iterations=0)

    def test_cpu_spec_present(self):
        assert CORE_I7_4600M.cores == 2


class TestTable5:
    @pytest.fixture(scope="class")
    def comparison(self):
        accel = AcceleratorModel(table4_configs()["1920x1080"]).report()
        return table5_comparison(accel)

    def test_headline_efficiency_vs_k20(self, comparison):
        assert comparison["efficiency_vs_k20"] > 500  # paper: "over 500x"

    def test_headline_efficiency_vs_tk1(self, comparison):
        assert comparison["efficiency_vs_tk1"] > 250  # paper: "over 250x"

    def test_normalized_powers(self, comparison):
        rows = comparison["rows"]
        assert rows["Tesla K20"].norm_power_w == pytest.approx(39.3, rel=0.02)
        assert rows["TK1"].norm_power_w * 1e3 == pytest.approx(152, rel=0.02)

    def test_energy_rows(self, comparison):
        rows = comparison["rows"]
        assert rows["Tesla K20"].energy_per_frame_mj_norm == pytest.approx(877, rel=0.02)
        assert rows["TK1"].energy_per_frame_mj_norm == pytest.approx(412, rel=0.02)
        assert rows["This Work"].energy_per_frame_mj_norm == pytest.approx(1.6, rel=0.05)

    def test_only_accelerator_and_k20_are_real_time(self, comparison):
        rows = comparison["rows"]
        assert rows["Tesla K20"].real_time
        assert not rows["TK1"].real_time
        assert rows["This Work"].real_time

    def test_on_chip_memory_ordering(self, comparison):
        rows = comparison["rows"]
        assert (
            rows["This Work"].on_chip_kb
            < rows["TK1"].on_chip_kb
            < rows["Tesla K20"].on_chip_kb
        )


class TestGslic:
    def test_is_full_image_ppa(self, small_scene):
        r = gslic(small_scene.image, n_superpixels=24, max_iterations=3,
                  convergence_threshold=0.0)
        assert r.subiterations == 3  # one sub-iteration per sweep
        assert r.params.architecture == "ppa"
        assert r.params.subsample_ratio == 1.0

    def test_quality_comparable_to_slic(self, small_scene):
        r = gslic(small_scene.image, n_superpixels=24)
        assert undersegmentation_error(r.labels, small_scene.gt_labels) < 0.08


class TestPreemptive:
    def test_activity_decreases(self, small_scene):
        r = preemptive_slic(small_scene.image, n_superpixels=24,
                            max_iterations=10, convergence_threshold=0.0)
        hist = r.active_history
        assert hist[0] == r.n_superpixels
        assert hist[-1] < hist[0]

    def test_quality_preserved(self, small_scene):
        r = preemptive_slic(small_scene.image, n_superpixels=24)
        # 0.1 bound: the corrected 2S x 2S CPA window (paper Section 2)
        # shifts a handful of boundary pixels on this 64x96 scene.
        assert undersegmentation_error(r.labels, small_scene.gt_labels) < 0.1

    def test_threshold_validated(self, small_scene):
        with pytest.raises(ConfigurationError):
            preemptive_slic(small_scene.image, preemption_threshold=-1.0)

    def test_combined_preemptive_sslic_runs(self, small_scene):
        r = preemptive_sslic(small_scene.image, n_superpixels=24,
                             max_iterations=6)
        assert r.labels.shape == small_scene.image.shape[:2]
        assert undersegmentation_error(r.labels, small_scene.gt_labels) < 0.1
        assert len(r.active_history) >= 1

    def test_combined_freezes_clusters(self, small_scene):
        r = preemptive_sslic(small_scene.image, n_superpixels=24,
                             max_iterations=10, preemption_threshold=0.5)
        assert r.active_history[-1] < r.n_superpixels
