"""Unit tests for repro.fixedpoint.array.FxpArray."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import FxpArray, QFormat

Q8_4 = QFormat(8, 4)
Q12_6 = QFormat(12, 6)


class TestConstruction:
    def test_from_float_roundtrip(self):
        vals = np.array([0.0, 1.25, -2.5])
        fx = FxpArray.from_float(vals, Q8_4)
        assert np.allclose(fx.to_float(), vals)

    def test_rejects_out_of_range_raw(self):
        with pytest.raises(FixedPointError):
            FxpArray(np.array([1000]), Q8_4)

    def test_shape_and_len(self):
        fx = FxpArray.from_float(np.zeros((3, 4)), Q8_4)
        assert fx.shape == (3, 4)
        assert fx.size == 12
        assert len(fx) == 3

    def test_indexing_preserves_format(self):
        fx = FxpArray.from_float(np.arange(6, dtype=float) / 4, Q8_4)
        sub = fx[2:4]
        assert isinstance(sub, FxpArray)
        assert sub.fmt == Q8_4

    def test_reshape(self):
        fx = FxpArray.from_float(np.zeros(6), Q8_4)
        assert fx.reshape(2, 3).shape == (2, 3)


class TestArithmetic:
    def test_add(self):
        a = FxpArray.from_float(np.array([1.0]), Q8_4)
        b = FxpArray.from_float(np.array([2.25]), Q8_4)
        assert (a + b).to_float()[0] == pytest.approx(3.25)

    def test_add_scalar_quantizes(self):
        a = FxpArray.from_float(np.array([1.0]), Q8_4)
        assert (a + 0.25).to_float()[0] == pytest.approx(1.25)

    def test_sub(self):
        a = FxpArray.from_float(np.array([1.0]), Q8_4)
        b = FxpArray.from_float(np.array([2.5]), Q8_4)
        assert (a - b).to_float()[0] == pytest.approx(-1.5)

    def test_mul(self):
        a = FxpArray.from_float(np.array([1.5]), Q8_4)
        b = FxpArray.from_float(np.array([2.0]), Q8_4)
        assert (a * b).to_float()[0] == pytest.approx(3.0)

    def test_square(self):
        a = FxpArray.from_float(np.array([-1.5]), Q8_4)
        assert a.square().to_float()[0] == pytest.approx(2.25)

    def test_mismatched_formats_rejected(self):
        a = FxpArray.from_float(np.array([1.0]), Q8_4)
        b = FxpArray.from_float(np.array([1.0]), Q12_6)
        with pytest.raises(FixedPointError):
            _ = a + b

    def test_rescale_then_add(self):
        a = FxpArray.from_float(np.array([1.0]), Q8_4)
        b = FxpArray.from_float(np.array([1.0]), Q12_6).rescale(Q8_4)
        assert (a + b).to_float()[0] == pytest.approx(2.0)

    def test_saturating_add(self):
        a = FxpArray.from_float(np.array([7.0]), Q8_4)
        out = a + 7.0
        assert out.to_float()[0] == pytest.approx(Q8_4.max_value)


class TestEquality:
    def test_equal_arrays(self):
        a = FxpArray.from_float(np.array([1.0, 2.0]), Q8_4)
        b = FxpArray.from_float(np.array([1.0, 2.0]), Q8_4)
        assert a == b

    def test_different_format_not_equal(self):
        a = FxpArray.from_float(np.array([1.0]), Q8_4)
        b = FxpArray.from_float(np.array([1.0]), Q12_6)
        assert a != b

    def test_repr_mentions_format(self):
        assert "Qs3.4" in repr(FxpArray.from_float(np.zeros(2), Q8_4))
