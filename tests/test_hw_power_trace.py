"""Tests for the frame power trace."""

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    AcceleratorModel,
    frame_power_trace,
    table4_configs,
)


@pytest.fixture(scope="module")
def model():
    return AcceleratorModel(table4_configs()["1920x1080"])


@pytest.fixture(scope="module")
def trace(model):
    return frame_power_trace(model)


class TestPowerTrace:
    def test_integral_equals_report_energy(self, model, trace):
        report = model.report()
        assert trace.energy_mj == pytest.approx(report.energy_per_frame_mj, rel=1e-6)

    def test_duration_equals_report_latency(self, model, trace):
        assert trace.total_ms == pytest.approx(model.report().latency_ms, rel=1e-6)

    def test_average_equals_report_power(self, model, trace):
        assert trace.average_mw == pytest.approx(model.report().power_mw, rel=1e-6)

    def test_segments_contiguous(self, trace):
        for a, b in zip(trace.segments, trace.segments[1:]):
            assert b.start_ms == pytest.approx(a.end_ms)

    def test_one_segment_per_phase(self, model, trace):
        # color + iterations * (cluster + center)
        expected = 1 + 2 * model.config.iterations
        assert len(trace.segments) == expected

    def test_power_never_below_floor(self, model, trace):
        for seg in trace.segments:
            assert seg.power_mw >= model.always_on_power_mw - 1e-9

    def test_cluster_phases_draw_the_peak(self, trace):
        peak_label = max(trace.segments, key=lambda s: s.power_mw).label
        assert peak_label.startswith("cluster_update")

    def test_sample(self, trace):
        mid = trace.segments[0].start_ms + trace.segments[0].duration_ms / 2
        assert trace.sample([mid])[0] == pytest.approx(trace.segments[0].power_mw)
        assert trace.sample([trace.total_ms + 1.0])[0] == 0.0

    def test_sample_vectorized(self, trace):
        ts = np.linspace(0, trace.total_ms * 0.999, 200)
        powers = trace.sample(ts)
        assert powers.min() > 0

    def test_type_check(self):
        with pytest.raises(HardwareModelError):
            frame_power_trace("not a model")
