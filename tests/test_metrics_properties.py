"""Property-based tests for metric invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    achievable_segmentation_accuracy,
    boundary_precision,
    boundary_recall,
    compactness,
    contingency_table,
    corrected_undersegmentation_error,
    undersegmentation_error,
)

label_maps = hnp.arrays(
    dtype=np.int32,
    shape=st.tuples(st.integers(3, 12), st.integers(3, 12)),
    elements=st.integers(0, 4),
)


def _pair(a, b):
    """Crop two maps to a common shape."""
    h = min(a.shape[0], b.shape[0])
    w = min(a.shape[1], b.shape[1])
    return a[:h, :w], b[:h, :w]


@given(labels=label_maps, gt=label_maps)
@settings(max_examples=120)
def test_use_nonnegative(labels, gt):
    labels, gt = _pair(labels, gt)
    assert undersegmentation_error(labels, gt) >= -1e-12


@given(labels=label_maps, gt=label_maps)
@settings(max_examples=120)
def test_corrected_use_in_unit_interval(labels, gt):
    labels, gt = _pair(labels, gt)
    v = corrected_undersegmentation_error(labels, gt)
    assert -1e-12 <= v <= 1.0 + 1e-12


@given(labels=label_maps)
@settings(max_examples=80)
def test_use_zero_against_self(labels):
    assert undersegmentation_error(labels, labels) == 0.0
    assert corrected_undersegmentation_error(labels, labels) == 0.0


@given(labels=label_maps, gt=label_maps)
@settings(max_examples=120)
def test_recall_and_precision_in_unit_interval(labels, gt):
    labels, gt = _pair(labels, gt)
    for tol in (0, 1):
        assert 0.0 <= boundary_recall(labels, gt, tolerance=tol) <= 1.0
        assert 0.0 <= boundary_precision(labels, gt, tolerance=tol) <= 1.0


@given(labels=label_maps, gt=label_maps)
@settings(max_examples=80)
def test_recall_precision_duality(labels, gt):
    """Recall(A vs B) == Precision(B vs A) by definition."""
    labels, gt = _pair(labels, gt)
    assert boundary_recall(labels, gt, tolerance=1) == boundary_precision(
        gt, labels, tolerance=1
    )


@given(labels=label_maps, gt=label_maps)
@settings(max_examples=80)
def test_asa_bounds_and_self_perfection(labels, gt):
    labels, gt = _pair(labels, gt)
    v = achievable_segmentation_accuracy(labels, gt)
    assert 0.0 < v <= 1.0
    assert achievable_segmentation_accuracy(labels, labels) == 1.0


@given(labels=label_maps)
@settings(max_examples=80)
def test_compactness_unit_interval(labels):
    assert 0.0 <= compactness(labels) <= 1.0


@given(labels=label_maps, gt=label_maps)
@settings(max_examples=80)
def test_contingency_marginals(labels, gt):
    labels, gt = _pair(labels, gt)
    table = contingency_table(labels, gt)
    assert table.sum() == labels.size
    row_sums = table.sum(axis=1)
    counts = np.bincount(labels.ravel(), minlength=table.shape[0])
    assert np.array_equal(row_sums, counts)
