"""Tests for the reproduction report generator."""

import pytest

from repro.analysis import ARTIFACT_ORDER, generate_report
from repro.errors import ConfigurationError


class TestGenerateReport:
    def test_aggregates_artifacts_in_order(self, tmp_path):
        (tmp_path / "table3_parallelism.txt").write_text("TABLE3 CONTENT")
        (tmp_path / "fig2_quality_tradeoff.txt").write_text("FIG2 CONTENT")
        text = generate_report(artifacts_dir=tmp_path)
        assert "TABLE3 CONTENT" in text
        assert "FIG2 CONTENT" in text
        # Paper order: Fig 2 section before Table 3.
        assert text.index("FIG2 CONTENT") < text.index("TABLE3 CONTENT")

    def test_missing_artifacts_noted_not_fatal(self, tmp_path):
        text = generate_report(artifacts_dir=tmp_path)
        assert "not yet run" in text
        # All known sections still present as headings.
        for _, heading in ARTIFACT_ORDER:
            assert heading in text

    def test_extra_artifacts_appended(self, tmp_path):
        (tmp_path / "custom_sweep.txt").write_text("CUSTOM")
        text = generate_report(artifacts_dir=tmp_path)
        assert "Additional artifacts" in text
        assert "CUSTOM" in text

    def test_writes_output_file(self, tmp_path):
        out = tmp_path / "REPORT.md"
        generate_report(artifacts_dir=tmp_path, output_path=out)
        assert out.exists()
        assert out.read_text().startswith("# S-SLIC reproduction report")

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            generate_report(artifacts_dir=tmp_path / "nope")
