"""Property-based tests for the color substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color import (
    HwColorConverter,
    LabEncoding,
    lab_to_rgb,
    rgb_to_lab,
    srgb_gamma_compress,
    srgb_gamma_expand,
)

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
u8 = st.integers(min_value=0, max_value=255)

_HW = HwColorConverter()


@given(x=unit_floats)
def test_gamma_roundtrip_pointwise(x):
    assert abs(float(srgb_gamma_compress(srgb_gamma_expand(x))) - x) < 1e-9


@given(x=unit_floats, y=unit_floats)
def test_gamma_monotone_pairwise(x, y):
    if x <= y:
        assert float(srgb_gamma_expand(x)) <= float(srgb_gamma_expand(y))


@given(r=u8, g=u8, b=u8)
@settings(max_examples=150)
def test_lab_roundtrip_any_srgb_color(r, g, b):
    """Every sRGB color survives RGB -> Lab -> RGB within a quantum."""
    rgb = np.array([[[r, g, b]]], dtype=np.uint8)
    back = lab_to_rgb(rgb_to_lab(rgb))
    assert np.abs(back * 255.0 - rgb.astype(np.float64)).max() < 0.51


@given(r=u8, g=u8, b=u8)
@settings(max_examples=150)
def test_lab_l_in_range_for_all_colors(r, g, b):
    lab = rgb_to_lab(np.array([[[r, g, b]]], dtype=np.uint8))[0, 0]
    # The sRGB matrix rows sum to the white point only to ~7
    # digits, so white can exceed 100 by a few 1e-6.
    assert -1e-9 <= lab[0] <= 100.0 + 1e-4


@given(r=u8, g=u8, b=u8)
@settings(max_examples=100)
def test_hw_pipeline_tracks_reference(r, g, b):
    """The integer pipeline stays within hardware error bounds of the
    float reference for every input color."""
    rgb = np.array([[[r, g, b]]], dtype=np.uint8)
    hw = _HW.convert(rgb)[0, 0]
    ref = rgb_to_lab(rgb)[0, 0]
    assert abs(hw[0] - ref[0]) < 2.5
    assert abs(hw[1] - ref[1]) < 7.5
    assert abs(hw[2] - ref[2]) < 7.5


@given(
    bits=st.integers(min_value=4, max_value=12),
    l=st.floats(min_value=0, max_value=100, allow_nan=False),
    a=st.floats(min_value=-100, max_value=100, allow_nan=False),
    b=st.floats(min_value=-100, max_value=100, allow_nan=False),
)
@settings(max_examples=150)
def test_encoding_roundtrip_error_bounded(bits, l, a, b):
    enc = LabEncoding(bits)
    lab = np.array([l, a, b])
    back = enc.decode(enc.encode(lab))
    # Inside the representable range the error is at most half a code.
    half_l = 0.5 / enc.l_scale
    half_ab = 0.5 / enc.ab_scale
    if 0 <= l <= 100:
        assert abs(back[0] - l) <= half_l + 1e-9
    lo = (0 - enc.ab_offset) / enc.ab_scale
    hi = (enc.code_max - enc.ab_offset) / enc.ab_scale
    for i, v in ((1, a), (2, b)):
        if lo <= v <= hi:
            assert abs(back[i] - v) <= half_ab + 1e-9
