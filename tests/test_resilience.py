"""Chaos suite: the repro.resilience hardened-execution layer.

Every recovery path in the runner is driven *deterministically* through
fault injection — crash, hang, slow, corrupt, broken submit — at fixed
seeds, and the core promise is checked throughout: frames that were not
faulted stay bit-identical to a fault-free serial run.

Multi-process tests keep frames tiny so pool startup, not segmentation,
dominates their cost.
"""

import time

import numpy as np
import pytest

from repro.core import SlicParams
from repro.errors import CheckpointError, ConfigurationError, ResilienceError
from repro.obs import MemorySink, Tracer
from repro.parallel import ParallelRunner, synthetic_batch, synthetic_streams
from repro.resilience import (
    CheckpointJournal,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    NON_RETRYABLE_ERRORS,
    RetryPolicy,
    completed_prefixes,
    load_journal,
    record_from_json,
    record_to_json,
)

PARAMS = SlicParams(
    n_superpixels=40,
    max_iterations=4,
    subsample_ratio=0.5,
    convergence_threshold=0.3,
)


#: The runner pins the kernel backend into its params, so journal
#: fingerprints are taken over the *resolved* params, not PARAMS.
RESOLVED_PARAMS = ParallelRunner(PARAMS).params


def _tiny_batch(n=3, seed=2):
    return synthetic_batch(n, height=50, width=70, seed=seed)


def _tiny_streams(n_streams=2, n_frames=3, seed=1):
    return synthetic_streams(n_streams, n_frames, height=50, width=70, seed=seed)


def _assert_bit_identical(a, b):
    assert a.key == b.key
    assert a.ok and b.ok
    assert np.array_equal(a.result.labels, b.result.labels)
    assert np.array_equal(a.result.centers, b.result.centers)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_entries(self):
        plan = FaultPlan.parse("crash@1:0,hang@0:2~0.5,slow@2:1:-1")
        assert plan.entries[0] == FaultSpec("crash", 1, 0)
        assert plan.entries[1].duration == 0.5
        assert plan.entries[2].attempt == -1
        assert plan.lookup(1, 0, 0).kind == "crash"
        assert plan.lookup(1, 0, 1) is None  # attempt 0 only
        assert plan.lookup(2, 1, 7).kind == "slow"  # -1 = every attempt
        assert plan.lookup(0, 0, 0) is None

    def test_parse_rejects_garbage(self):
        with pytest.raises(ResilienceError):
            FaultPlan.parse("explode@0:0")
        with pytest.raises(ResilienceError):
            FaultPlan.parse("crash@zero:0")

    def test_random_field_is_deterministic_and_seed_sensitive(self):
        plan = FaultPlan.parse("random", seed=7, rate=0.3)
        hits = {
            (s, f)
            for s in range(4)
            for f in range(20)
            if plan.lookup(s, f, 0) is not None
        }
        again = {
            (s, f)
            for s in range(4)
            for f in range(20)
            if plan.lookup(s, f, 0) is not None
        }
        assert hits == again
        assert 0 < len(hits) < 80  # ~24 expected; never all or nothing
        other = FaultPlan.parse("random", seed=8, rate=0.3)
        other_hits = {
            (s, f)
            for s in range(4)
            for f in range(20)
            if other.lookup(s, f, 0) is not None
        }
        assert hits != other_hits

    def test_random_faults_fire_on_first_attempt_only(self):
        plan = FaultPlan.parse("random", seed=7, rate=1.0)
        assert plan.lookup(0, 0, 0) is not None
        assert plan.lookup(0, 0, 1) is None

    def test_injector_skips_process_faults_in_process(self):
        tracer = Tracer(MemorySink())
        injector = FaultInjector(FaultPlan.parse("crash@0:0,error@0:1"), tracer)
        assert injector.fault_for(0, 0, 0, in_worker=False) is None
        assert injector.fault_for(0, 1, 0, in_worker=False).kind == "error"
        assert injector.skipped == 1
        assert injector.injected == 1

    def test_bad_rate_rejected(self):
        with pytest.raises(ResilienceError):
            FaultPlan(rate=1.5)


# ---------------------------------------------------------------------------
# Retry policy (pure logic)
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_disabled_by_default(self):
        assert not RetryPolicy().should_retry("WorkerCrash", 0, 0)

    def test_attempt_and_budget_bounds(self):
        p = RetryPolicy(retries=2, retry_budget=3)
        assert p.should_retry("WorkerCrash", 0, 0)
        assert p.should_retry("WorkerCrash", 1, 0)
        assert not p.should_retry("WorkerCrash", 2, 0)  # retries exhausted
        assert not p.should_retry("WorkerCrash", 0, 3)  # budget exhausted

    def test_deterministic_failures_never_retry(self):
        p = RetryPolicy(retries=5)
        for err in NON_RETRYABLE_ERRORS:
            assert not p.should_retry(err, 0, 0)
        assert p.should_retry("FrameTimeout", 0, 0)
        assert p.should_retry("InjectedFault", 0, 0)

    def test_exponential_backoff_with_cap(self):
        p = RetryPolicy(retries=9, backoff_s=0.1, backoff_factor=2.0,
                        max_backoff_s=0.5)
        assert p.delay(1) == pytest.approx(0.1)
        assert p.delay(2) == pytest.approx(0.2)
        assert p.delay(3) == pytest.approx(0.4)
        assert p.delay(4) == pytest.approx(0.5)  # capped

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(retries=-1)
        with pytest.raises(ResilienceError):
            RetryPolicy(backoff_factor=0.5)


# ---------------------------------------------------------------------------
# Retries in the runner (serial path: fast, no pool)
# ---------------------------------------------------------------------------
class TestRetries:
    def test_transient_fault_recovers_with_attempts_gt_one(self):
        frames = _tiny_batch(3)
        faulted = ParallelRunner(
            PARAMS, retry=2, faults=FaultPlan.parse("error@0:1")
        ).run_streams([frames])
        clean = ParallelRunner(PARAMS).run_streams([frames])
        assert faulted.n_ok == 3
        assert faulted.records[1].attempts == 2
        assert faulted.retries_used == 1
        assert faulted.n_recovered == 1
        for a, b in zip(faulted.records, clean.records):
            _assert_bit_identical(a, b)

    def test_persistent_fault_exhausts_retries_and_quarantines(self):
        res = ParallelRunner(
            PARAMS, retry=2, faults=FaultPlan.parse("error@0:1:-1")
        ).run_streams([_tiny_batch(3)])
        rec = res.records[1]
        assert not rec.ok
        assert rec.attempts == 3  # 1 try + 2 retries
        assert rec.quarantined
        assert res.n_quarantined == 1
        # The stream continued past the poison frame (cold restart).
        assert res.records[2].ok
        assert not res.records[2].warm_started

    def test_retry_budget_caps_batch_wide_retries(self):
        res = ParallelRunner(
            PARAMS,
            retry=RetryPolicy(retries=3, backoff_s=0.0, retry_budget=1),
            faults=FaultPlan.parse("error@0:0:-1,error@0:1:-1"),
        ).run_streams([_tiny_batch(3)])
        assert res.retries_used == 1
        assert res.n_failed == 2

    def test_corrupt_image_fault_is_image_error_not_retried(self):
        res = ParallelRunner(
            PARAMS, retry=3, faults=FaultPlan.parse("corrupt_image@0:0")
        ).run_streams([_tiny_batch(2)])
        rec = res.records[0]
        assert not rec.ok
        assert rec.error_type == "ImageError"
        assert rec.attempts == 1
        assert res.retries_used == 0

    def test_stream_blocked_while_retry_pending(self):
        # The faulted frame must resolve before its successor runs, so
        # the warm chain stays intact through a recovered retry.
        res = ParallelRunner(
            PARAMS,
            retry=RetryPolicy(retries=1, backoff_s=0.0),
            faults=FaultPlan.parse("error@0:1"),
        ).run_streams(_tiny_streams(1, 3))
        assert res.n_ok == 3
        assert [r.frame_index for r in res.records] == [0, 1, 2]
        assert res.records[2].warm_started


# ---------------------------------------------------------------------------
# Submission-time validation (parent-side ImageError records)
# ---------------------------------------------------------------------------
class TestSubmissionValidation:
    def test_nan_frame_rejected_in_parent(self):
        frames = _tiny_batch(2)
        bad = frames[0].astype(np.float64) / 255.0
        bad[0, 0, 0] = np.nan
        res = ParallelRunner(PARAMS).run_streams([[frames[0], bad, frames[1]]])
        rec = res.records[1]
        assert not rec.ok
        assert rec.error_type == "ImageError"
        assert "non-finite" in rec.error
        assert rec.worker_pid != 0  # produced by the parent, not a worker
        # The bad frame had a live warm chain behind it.
        assert rec.warm_started
        assert not res.records[2].warm_started  # chain broke

    def test_wrong_shape_rejected_in_parent(self):
        res = ParallelRunner(PARAMS).run_batch([np.zeros((10, 10))])
        assert res.records[0].error_type == "ImageError"

    def test_stream_error_record_reports_warm_state(self):
        # Satellite fix: a strict-shape StreamError on frame 1 must say
        # the stream *had* warm state when the plan failed.
        frames = _tiny_batch(2)
        small = frames[1][:40, :60]
        res = ParallelRunner(PARAMS, strict_shape=True).run_streams(
            [[frames[0], small]]
        )
        rec = res.records[1]
        assert rec.error_type == "StreamError"
        assert rec.warm_started


# ---------------------------------------------------------------------------
# Pool-level chaos (multi-process)
# ---------------------------------------------------------------------------
class TestPoolChaos:
    def test_injected_crash_recovers_and_matches_serial(self):
        streams_a = _tiny_streams(2, 2)
        streams_b = _tiny_streams(2, 2)
        faulted = ParallelRunner(
            PARAMS, n_workers=2, retry=2,
            faults=FaultPlan.parse("crash@0:0"),
        ).run_streams(streams_a)
        clean = ParallelRunner(PARAMS).run_streams(streams_b)
        assert faulted.n_ok == 4
        assert faulted.pool_restarts >= 1
        assert faulted.records[0].attempts > 1
        for a, b in zip(faulted.records, clean.records):
            _assert_bit_identical(a, b)

    def test_injected_submit_break_exercises_submit_branch(self):
        res = ParallelRunner(
            PARAMS, n_workers=2, retry=1,
            faults=FaultPlan.parse("submit_broken@0:0"),
        ).run_streams([[f] for f in _tiny_batch(2)])
        assert res.n_ok == 2
        assert res.pool_restarts == 1
        assert res.records[0].attempts == 2

    def test_unpicklable_result_becomes_record_and_recovers(self):
        res = ParallelRunner(
            PARAMS, n_workers=2, retry=1,
            faults=FaultPlan.parse("corrupt_result@0:0"),
        ).run_streams([[f] for f in _tiny_batch(2)])
        assert res.n_ok == 2
        assert res.records[0].attempts == 2

    def test_crash_without_retry_keeps_seed_behavior(self):
        # One stream: frame 1 is not in flight when frame 0's crash
        # breaks the pool, so the outcome is fully deterministic.
        res = ParallelRunner(
            PARAMS, n_workers=2, faults=FaultPlan.parse("crash@0:0")
        ).run_streams([_tiny_batch(2)])
        rec = res.records[0]
        assert not rec.ok
        assert rec.error_type == "WorkerCrash"
        assert not rec.quarantined
        assert res.n_ok == 1
        assert not res.records[1].warm_started  # chain broke

    def test_restart_exhaustion_falls_back_to_serial(self):
        # A persistent crash fault breaks the pool on every attempt; with
        # zero restarts allowed the runner flips to in-process execution,
        # where process-level faults are skipped — so the frame succeeds.
        res = ParallelRunner(
            PARAMS, n_workers=2, retry=3, max_pool_restarts=0,
            faults=FaultPlan.parse("crash@0:0:-1"),
        ).run_streams([[f] for f in _tiny_batch(2)])
        assert res.n_ok == 2
        assert res.pool_restarts == 1
        assert res.records[0].attempts > 1

    def test_deterministic_random_chaos_batch_completes(self):
        # The CI chaos smoke in miniature: a seeded random fault field
        # over a multi-stream batch; everything recovers or fails as
        # data, and the run is reproducible.
        plan = FaultPlan.parse("random", seed=42, rate=0.25)
        res = ParallelRunner(
            PARAMS, n_workers=2, frame_timeout=20.0,
            retry=RetryPolicy(retries=2, backoff_s=0.01),
            faults=plan,
        ).run_streams(_tiny_streams(3, 2, seed=4))
        assert res.n_frames == 6
        failed = [r for r in res.records if not r.ok]
        # Only deterministic faults (corrupt_image -> ImageError) may
        # remain failed; transient kinds must have been retried away.
        assert all(r.error_type == "ImageError" for r in failed)


# ---------------------------------------------------------------------------
# Watchdog (hang -> FrameTimeout)
# ---------------------------------------------------------------------------
class TestWatchdog:
    def test_hung_worker_becomes_frame_timeout_record(self):
        t0 = time.monotonic()
        res = ParallelRunner(
            PARAMS, n_workers=2, frame_timeout=4.0,
            faults=FaultPlan.parse("hang@0:0~60"),
        ).run_streams([[f] for f in _tiny_batch(2)])
        elapsed = time.monotonic() - t0
        rec = res.records[0]
        assert not rec.ok
        assert rec.error_type == "FrameTimeout"
        assert res.timeouts == 1
        assert res.records[1].ok  # the innocent frame was resubmitted
        assert elapsed < 30.0  # nowhere near the 60 s hang

    def test_timeout_then_retry_recovers(self):
        res = ParallelRunner(
            PARAMS, n_workers=2, frame_timeout=4.0,
            retry=RetryPolicy(retries=1, backoff_s=0.0),
            faults=FaultPlan.parse("hang@0:0~60"),
        ).run_streams([[f] for f in _tiny_batch(2)])
        assert res.n_ok == 2
        assert res.records[0].attempts == 2
        assert res.timeouts == 1

    def test_timeout_requires_positive_deadline(self):
        with pytest.raises(ConfigurationError):
            ParallelRunner(PARAMS, frame_timeout=0.0)


# ---------------------------------------------------------------------------
# Checkpoint journal + resume
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def test_record_json_roundtrip(self):
        res = ParallelRunner(PARAMS).run_batch(_tiny_batch(1))
        rec = res.records[0]
        back = record_from_json(record_to_json(rec), params=PARAMS)
        _assert_bit_identical(rec, back)
        assert back.elapsed_s == rec.elapsed_s
        assert back.kernel_backend == rec.kernel_backend

    def test_resume_is_bit_identical(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        frames = _tiny_batch(4, seed=5)
        full = ParallelRunner(PARAMS, checkpoint=journal).run_streams([frames])
        # Simulate a mid-run kill: keep header + first two records.
        lines = journal.read_text().splitlines(True)
        journal.write_text("".join(lines[:3]))
        resumed = ParallelRunner(PARAMS, checkpoint=journal).resume([frames])
        assert resumed.resumed_frames == 2
        assert resumed.n_frames == 4
        for a, b in zip(full.records, resumed.records):
            _assert_bit_identical(a, b)
        assert [r.warm_started for r in resumed.records] == [
            r.warm_started for r in full.records
        ]
        # The journal was re-completed: a second resume replays all 4.
        again = ParallelRunner(PARAMS, checkpoint=journal).resume([frames])
        assert again.resumed_frames == 4
        for a, b in zip(full.records, again.records):
            _assert_bit_identical(a, b)

    def test_torn_final_line_is_dropped(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        frames = _tiny_batch(2)
        ParallelRunner(PARAMS, checkpoint=journal).run_streams([frames])
        text = journal.read_text()
        journal.write_text(text[: len(text) - 40])  # tear the last record
        records = load_journal(journal, RESOLVED_PARAMS)
        assert len(records) == 1

    def test_params_fingerprint_mismatch_refuses_resume(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        frames = _tiny_batch(1)
        ParallelRunner(PARAMS, checkpoint=journal).run_streams([frames])
        other = PARAMS.with_(compactness=PARAMS.compactness + 1)
        with pytest.raises(CheckpointError, match="different parameters"):
            ParallelRunner(other, checkpoint=journal).resume([frames])

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(CheckpointError):
            ParallelRunner(PARAMS).resume([_tiny_batch(1)])

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        ParallelRunner(PARAMS, checkpoint=journal).run_streams([_tiny_batch(2)])
        lines = journal.read_text().splitlines()
        lines[1] = lines[1][:20]  # corrupt a NON-final record
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_journal(journal, RESOLVED_PARAMS)

    def test_completed_prefixes_stop_at_gaps(self):
        mk = lambda s, f: record_from_json(
            {"stream_id": s, "frame_index": f, "ok": False}
        )
        prefixes = completed_prefixes(
            [mk(0, 0), mk(0, 2), mk(1, 0), mk(1, 1)]
        )
        assert [r.frame_index for r in prefixes[0]] == [0]
        assert [r.frame_index for r in prefixes[1]] == [0, 1]

    def test_failed_frames_replay_with_broken_chain(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        frames = _tiny_batch(3)
        bad = frames[1].astype(np.float64) / 255.0
        bad[0, 0, 0] = np.nan
        stream = [frames[0], bad, frames[2]]
        full = ParallelRunner(PARAMS, checkpoint=journal).run_streams([stream])
        lines = journal.read_text().splitlines(True)
        journal.write_text("".join(lines[:3]))  # header + ok + failed
        resumed = ParallelRunner(PARAMS, checkpoint=journal).resume([stream])
        assert resumed.resumed_frames == 2
        assert not resumed.records[1].ok
        # Frame 2 cold-started in both runs (the failure broke the chain).
        assert not resumed.records[2].warm_started
        _assert_bit_identical(full.records[2], resumed.records[2])


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------
class TestResilienceTelemetry:
    def test_counters_emitted(self):
        tracer = Tracer(MemorySink())
        ParallelRunner(
            PARAMS, tracer=tracer,
            retry=RetryPolicy(retries=1, backoff_s=0.0),
            faults=FaultPlan.parse("error@0:1"),
        ).run_streams([_tiny_batch(3)])
        tracer.flush()
        counters = {
            e["name"]: e["value"]
            for e in tracer.sink.events
            if e["ev"] == "counter"
        }
        assert counters["resilience.faults_injected"] == 1
        assert counters["resilience.retries"] == 1
        tracer.close()
