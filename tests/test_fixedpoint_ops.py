"""Unit tests for repro.fixedpoint.ops (saturating raw-code arithmetic)."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import (
    QFormat,
    isqrt_raw,
    rescale,
    sat_add,
    sat_mac,
    sat_mul,
    sat_square,
    sat_sub,
)

Q8_0 = QFormat(8, 0)
Q8_4 = QFormat(8, 4)
Q16_8 = QFormat(16, 8)


class TestSatAddSub:
    def test_add_plain(self):
        assert sat_add(3, 4, Q8_0) == 7

    def test_add_saturates_high(self):
        assert sat_add(100, 100, Q8_0) == 127

    def test_add_saturates_low(self):
        assert sat_add(-100, -100, Q8_0) == -128

    def test_sub_plain(self):
        assert sat_sub(3, 4, Q8_0) == -1

    def test_sub_saturates(self):
        assert sat_sub(-100, 100, Q8_0) == -128

    def test_vectorized(self):
        a = np.array([1, 2, 127])
        b = np.array([1, 2, 127])
        assert np.array_equal(sat_add(a, b, Q8_0), [2, 4, 127])


class TestRescale:
    def test_upshift_exact(self):
        # 1.0 in Q8.0 (raw 1) -> Q16.8 (raw 256).
        assert rescale(1, Q8_0, Q16_8) == 256

    def test_downshift_rounds_nearest(self):
        # raw 384 in Q16.8 = 1.5 -> Q8.0 rounds away from zero -> 2.
        assert rescale(384, Q16_8, Q8_0) == 2

    def test_downshift_negative_symmetric(self):
        assert rescale(-384, Q16_8, Q8_0) == -2

    def test_downshift_truncation_bias_absent(self):
        # 1.25 -> 1, 1.75 -> 2 (nearest, not floor).
        assert rescale(320, Q16_8, Q8_0) == 1
        assert rescale(448, Q16_8, Q8_0) == 2

    def test_saturates_on_narrow_target(self):
        assert rescale(1 << 14, Q16_8, Q8_4) == Q8_4.raw_max

    def test_roundtrip_when_representable(self):
        raw = np.arange(-8, 8)
        up = rescale(raw, Q8_4, Q16_8)
        back = rescale(up, Q16_8, Q8_4)
        assert np.array_equal(back, raw)


class TestSatMul:
    def test_mul_integers(self):
        assert sat_mul(3, 4, Q8_0) == 12

    def test_mul_fractions(self):
        # 0.5 * 0.5 = 0.25 in Q8.4: raw 8 * 8 -> 0.25 -> raw 4.
        assert sat_mul(8, 8, Q8_4) == 4

    def test_mul_saturates(self):
        assert sat_mul(100, 100, Q8_0) == 127

    def test_mul_negative(self):
        assert sat_mul(-8, 8, Q8_4) == -4

    def test_square_equals_self_mul(self):
        vals = np.array([-16, -3, 0, 5, 16])
        assert np.array_equal(
            sat_square(vals, Q8_4), sat_mul(vals, vals, Q8_4)
        )

    def test_square_nonnegative(self):
        vals = np.arange(-20, 20)
        assert (sat_square(vals, Q8_4) >= 0).all()

    def test_wide_operand_rejected(self):
        with pytest.raises(FixedPointError):
            sat_mul(1, 1, QFormat(40, 0))

    def test_result_format_override(self):
        # 2.0 * 2.0 = 4.0 expressed in Q16.8.
        out = sat_mul(32, 32, Q8_4, result_fmt=Q16_8)
        assert out == 4 * 256


class TestSatMac:
    def test_mac_accumulates(self):
        acc_fmt = Q16_8
        acc = acc_fmt.to_raw(1.0)
        out = sat_mac(acc, Q8_4.to_raw(0.5), Q8_4.to_raw(0.5), Q8_4, acc_fmt)
        assert acc_fmt.from_raw(out) == pytest.approx(1.25)

    def test_mac_saturates_accumulator(self):
        acc = Q8_0.raw_max
        out = sat_mac(acc, 10, 10, Q8_0, Q8_0)
        assert out == Q8_0.raw_max


class TestIsqrt:
    def test_perfect_squares(self):
        fmt = QFormat(16, 0, signed=False)
        vals = np.array([0, 1, 4, 9, 16, 25, 10000])
        roots = isqrt_raw(vals, fmt, result_fmt=fmt)
        assert np.array_equal(roots, [0, 1, 2, 3, 4, 5, 100])

    def test_truncation_between_squares(self):
        fmt = QFormat(16, 0, signed=False)
        assert isqrt_raw(np.array([8]), fmt, fmt)[0] == 2
        assert isqrt_raw(np.array([15]), fmt, fmt)[0] == 3

    def test_fractional_output_format(self):
        in_fmt = QFormat(16, 8, signed=False)
        out_fmt = QFormat(16, 8, signed=False)
        # sqrt(2.25) = 1.5 exactly representable.
        raw = in_fmt.to_raw(2.25)
        assert out_fmt.from_raw(isqrt_raw(raw, in_fmt, out_fmt)) == pytest.approx(1.5)

    def test_rejects_negative(self):
        with pytest.raises(FixedPointError):
            isqrt_raw(np.array([-1]), QFormat(16, 0), QFormat(16, 0))

    def test_monotone(self):
        fmt = QFormat(20, 0, signed=False)
        vals = np.arange(0, 5000, 7)
        roots = isqrt_raw(vals, fmt, fmt)
        assert (np.diff(roots) >= 0).all()


class TestDivRaw:
    """The Center Update Unit's divider arithmetic."""

    def _f(self, total, frac):
        from repro.fixedpoint import QFormat
        return QFormat(total, frac)

    def test_integer_mean(self):
        from repro.fixedpoint import div_raw
        out = div_raw(100, 4, self._f(32, 0), self._f(16, 0))
        assert out == 25

    def test_fractional_quotient(self):
        from repro.fixedpoint import div_raw
        # 100 / 8 = 12.5 exactly representable in Q8 fraction.
        out = div_raw(100, 8, self._f(32, 0), self._f(16, 8))
        assert out == int(12.5 * 256)

    def test_round_to_nearest(self):
        from repro.fixedpoint import div_raw
        assert div_raw(7, 2, self._f(16, 0), self._f(16, 0)) == 4
        assert div_raw(-7, 2, self._f(16, 0), self._f(16, 0)) == -4
        assert div_raw(7, 3, self._f(16, 0), self._f(16, 0)) == 2

    def test_zero_denominator_yields_zero(self):
        from repro.fixedpoint import div_raw
        assert div_raw(123, 0, self._f(16, 0), self._f(16, 0)) == 0

    def test_negative_denominator_rejected(self):
        from repro.fixedpoint import div_raw

        with pytest.raises(FixedPointError):
            div_raw(1, -1, self._f(16, 0), self._f(16, 0))

    def test_saturates_to_result_format(self):
        from repro.fixedpoint import div_raw
        out = div_raw(10_000, 1, self._f(32, 0), QFormat(8, 0))
        assert out == 127

    def test_matches_center_mean_semantics(self):
        """Sigma-register mean: sum of codes / count, like the hardware."""
        from repro.fixedpoint import div_raw
        import numpy as np

        sums = np.array([1000, 255, 0])
        counts = np.array([10, 5, 0])
        out = div_raw(sums, counts, self._f(32, 0), self._f(16, 4))
        assert out[0] == 100 * 16
        assert out[1] == 51 * 16
        assert out[2] == 0
