"""Unit tests for the visualization helpers."""

import numpy as np
import pytest

from repro.core import sslic
from repro.viz import ascii_xy_plot, draw_boundaries, label_color_image, mean_color_image


class TestDrawBoundaries:
    def test_overlay_paints_boundary_pixels(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=16, max_iterations=2)
        out = draw_boundaries(small_scene.image, r.labels, color=(255, 0, 0))
        assert out.shape == small_scene.image.shape
        assert out.dtype == np.uint8
        reds = (out == np.array([255, 0, 0], dtype=np.uint8)).all(axis=-1)
        assert reds.any()

    def test_input_not_mutated(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=16, max_iterations=2)
        before = small_scene.image.copy()
        draw_boundaries(small_scene.image, r.labels)
        assert np.array_equal(small_scene.image, before)

    def test_shape_mismatch_rejected(self, small_scene):
        with pytest.raises(ValueError):
            draw_boundaries(small_scene.image, np.zeros((3, 3), dtype=np.int32))


class TestLabelColorImage:
    def test_distinct_labels_distinct_colors(self):
        labels = np.array([[0, 1], [2, 3]], dtype=np.int32)
        img = label_color_image(labels)
        colors = {tuple(img[y, x]) for y in range(2) for x in range(2)}
        assert len(colors) == 4

    def test_deterministic_by_seed(self):
        labels = np.arange(9).reshape(3, 3).astype(np.int32)
        assert np.array_equal(label_color_image(labels, 1), label_color_image(labels, 1))
        assert not np.array_equal(label_color_image(labels, 1), label_color_image(labels, 2))


class TestMeanColorImage:
    def test_constant_within_superpixels(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=16, max_iterations=2)
        out = mean_color_image(small_scene.image, r.labels)
        for k in np.unique(r.labels)[:5]:
            region = out[r.labels == k]
            assert (region == region[0]).all()

    def test_mean_value_correct(self):
        img = np.zeros((2, 2, 3), dtype=np.uint8)
        img[0, 0] = 10
        img[0, 1] = 20
        labels = np.zeros((2, 2), dtype=np.int32)
        out = mean_color_image(img, labels)
        assert out[0, 0, 0] == (10 + 20 + 0 + 0) // 4


class TestAsciiPlot:
    def test_contains_series_and_legend(self):
        chart = ascii_xy_plot(
            {"a": ([1, 2, 3], [1, 4, 9]), "b": ([1, 2, 3], [2, 3, 4])},
            title="demo",
        )
        assert "demo" in chart
        assert "* a" in chart
        assert "o b" in chart

    def test_empty_series(self):
        assert ascii_xy_plot({"a": ([], [])}) == "(no data)"

    def test_degenerate_single_point(self):
        chart = ascii_xy_plot({"a": ([1.0], [1.0])})
        assert "*" in chart
