"""Tests for the per-stream session registry: warm chains, LRU, TTL."""

import numpy as np
import pytest

from repro.core.params import SlicParams
from repro.core.streaming import StreamSegmenter
from repro.data import SceneConfig, VideoSequence
from repro.errors import ConfigurationError
from repro.serve import SessionRegistry


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


PARAMS = SlicParams(n_superpixels=32)


def make(max_sessions=4, ttl_s=100.0):
    clock = FakeClock()
    return SessionRegistry(
        PARAMS, max_sessions=max_sessions, ttl_s=ttl_s, clock=clock
    ), clock


def video_frames(n=3, seed=5):
    seq = VideoSequence(
        n, config=SceneConfig(height=48, width=64, noise=0.0),
        motion="shake", seed=seed,
    )
    return [frame.image for frame in seq]


class TestSessionLifecycle:
    def test_same_id_returns_same_session(self):
        reg, _ = make()
        assert reg.get_or_create("a") is reg.get_or_create("a")
        assert len(reg) == 1

    def test_distinct_ids_are_isolated(self):
        reg, _ = make()
        assert reg.get_or_create("a") is not reg.get_or_create("b")

    def test_close_drops_warm_state(self):
        reg, _ = make()
        reg.get_or_create("a")
        assert reg.close("a")
        assert not reg.close("a")
        assert len(reg) == 0

    def test_lru_eviction_at_capacity(self):
        reg, clock = make(max_sessions=2)
        reg.get_or_create("a")
        clock.advance(1.0)
        reg.get_or_create("b")
        clock.advance(1.0)
        reg.get_or_create("a")  # refresh a: now b is the coldest
        clock.advance(1.0)
        reg.get_or_create("c")  # evicts b
        assert reg.evicted_total == 1
        assert set(s for s in reg._sessions) == {"a", "c"}

    def test_ttl_expiry(self):
        reg, clock = make(ttl_s=10.0)
        reg.get_or_create("a")
        clock.advance(11.0)
        assert reg.sweep() == 1
        assert reg.expired_total == 1
        assert len(reg) == 0

    def test_activity_refreshes_ttl(self):
        reg, clock = make(ttl_s=10.0)
        reg.get_or_create("a")
        clock.advance(6.0)
        reg.get_or_create("a")
        clock.advance(6.0)
        assert reg.sweep() == 0

    def test_stats(self):
        reg, _ = make()
        reg.get_or_create("a")
        stats = reg.stats()
        assert stats == {"active": 1, "evicted": 0, "expired": 0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SessionRegistry(PARAMS, max_sessions=0)
        with pytest.raises(ConfigurationError):
            SessionRegistry(PARAMS, ttl_s=0.0)


class TestWarmChainIdentity:
    def test_session_chain_matches_serial_segmenter(self):
        """plan()/commit() through a session == StreamSegmenter.process()."""
        frames = video_frames(3)
        reg, _ = make()
        session = reg.get_or_create("cam")
        serial = StreamSegmenter(PARAMS)

        from repro.core.engine import run_segmentation

        for image in frames:
            plan = session.segmenter.plan(image.shape)
            served = run_segmentation(
                image, PARAMS,
                warm_centers=plan.warm_centers,
                warm_labels=plan.warm_labels,
            )
            session.segmenter.commit(plan, served)
            baseline = serial.process(image)
            np.testing.assert_array_equal(baseline.labels, served.labels)

        assert session.warm
        history = session.segmenter.history
        assert [h.warm_started for h in history] == [False, True, True]

    def test_eviction_only_costs_a_cold_start(self):
        frames = video_frames(2)
        reg, clock = make(max_sessions=1)
        session = reg.get_or_create("cam")

        from repro.core.engine import run_segmentation

        plan = session.segmenter.plan(frames[0].shape)
        result = run_segmentation(frames[0], PARAMS)
        session.segmenter.commit(plan, result)
        clock.advance(1.0)
        reg.get_or_create("other")  # evicts cam
        fresh = reg.get_or_create("cam")
        assert fresh is not session
        assert not fresh.warm  # cold again — correctness unaffected
