"""Tests for the joint design space and Pareto analysis."""

import pytest

from repro.analysis import best_real_time_design, joint_design_space, pareto_frontier
from repro.errors import ConfigurationError
from repro.hw import ClusterWays, table4_configs


@pytest.fixture(scope="module")
def small_space():
    return joint_design_space(
        ways_list=(ClusterWays(1, 1, 1), ClusterWays(9, 9, 6)),
        buffers_kb=(1.0, 4.0),
        bits_list=(8,),
        cores_list=(1,),
    )


class TestJointSpace:
    def test_cartesian_size(self, small_space):
        assert len(small_space) == 2 * 2 * 1 * 1

    def test_configs_distinct(self, small_space):
        configs = {
            (r.config.ways.label, r.config.buffer_kb_per_channel)
            for r in small_space
        }
        assert len(configs) == len(small_space)


class TestParetoFrontier:
    def test_frontier_nonempty_subset(self, small_space):
        front = pareto_frontier(small_space)
        assert 0 < len(front) <= len(small_space)

    def test_frontier_mutually_nondominated(self, small_space):
        front = pareto_frontier(small_space)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.latency_ms <= a.latency_ms
                    and b.area_mm2 <= a.area_mm2
                    and b.energy_per_frame_mj <= a.energy_per_frame_mj
                    and (
                        b.latency_ms < a.latency_ms
                        or b.area_mm2 < a.area_mm2
                        or b.energy_per_frame_mj < a.energy_per_frame_mj
                    )
                )
                assert not dominates

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_dominated_design_excluded(self, small_space):
        # 1-1-1 at 4 kB is strictly slower than 9-9-6 at 4 kB and barely
        # smaller; at minimum, the global latency minimizer must survive.
        front = pareto_frontier(small_space)
        fastest = min(small_space, key=lambda r: r.latency_ms)
        assert fastest in front


class TestBestRealTime:
    def test_paper_design_under_constraints(self):
        reports = joint_design_space(
            ways_list=(ClusterWays(1, 1, 1), ClusterWays(3, 3, 3), ClusterWays(9, 9, 6)),
            buffers_kb=(1.0, 2.0, 4.0, 8.0),
            bits_list=(8,),
            cores_list=(1,),
        )
        best = best_real_time_design(reports)
        assert best.config.ways == ClusterWays(9, 9, 6)
        assert best.config.buffer_kb_per_channel == 4.0

    def test_no_feasible_design(self):
        reports = joint_design_space(
            ways_list=(ClusterWays(1, 1, 1),),  # II=9 cannot reach 30 fps
            buffers_kb=(4.0,),
            bits_list=(8,),
            cores_list=(1,),
        )
        assert best_real_time_design(reports) is None

    def test_prefer_energy(self, small_space):
        best = best_real_time_design(small_space, prefer="energy")
        assert best is not None
        assert best.real_time

    def test_bad_prefer(self, small_space):
        with pytest.raises(ConfigurationError):
            best_real_time_design(small_space, prefer="beauty")
