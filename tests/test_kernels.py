"""The repro.kernels layer: dispatch rules and backend bit-identity.

Every optimized backend must reproduce the reference loops *exactly* —
same labels, same distance buffers, same touched counts, same component
numbering — across the float and fixed datapaths. The property tests
here are the contract ``docs/kernels.md`` promises; the speedup side is
asserted in ``benchmarks/bench_kernels.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.color import rgb_to_lab
from repro.core import (
    FixedDatapath,
    SlicParams,
    candidate_map,
    grid_geometry,
    initial_centers,
    spatial_weight,
    tile_map,
)
from repro.core.assignment import PixelArrays
from repro.errors import ConfigurationError
from repro.kernels import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    resolve_name,
    validate_name,
)
from repro.kernels import native as native_mod

H, W = 48, 64

OPTIMIZED = [
    name
    for name in ("vectorized", "native", "native-mt")
    if name in available_backends()
]


def _setup(seed, k, m, fixed=False):
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
    lab = rgb_to_lab(image)
    centers = initial_centers(lab, k)
    # Off-grid centers exercise window clipping and sub-pixel handling.
    centers = centers.copy()
    centers[:, 3] += rng.uniform(-2, 2, len(centers))
    centers[:, 4] += rng.uniform(-2, 2, len(centers))
    gh, gw, _, _ = grid_geometry((H, W), k)
    tiles = tile_map((H, W), gh, gw)
    cands = candidate_map(gh, gw)
    s = float(np.sqrt(H * W / len(centers)))
    weight = spatial_weight(m, s)
    dp = FixedDatapath(bits=8) if fixed else None
    codes = dp.encode_image(lab) if fixed else None
    return lab, centers, tiles, cands, s, weight, dp, codes


class TestDispatch:
    def test_reference_and_vectorized_always_available(self):
        names = available_backends()
        assert "reference" in names
        assert "vectorized" in names

    def test_validate_name_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            validate_name("cuda")

    def test_validate_name_accepts_all_known(self):
        for name in BACKEND_NAMES:
            assert validate_name(name.upper()) == name

    def test_resolve_name_concrete_passthrough(self):
        assert resolve_name("reference") == "reference"
        assert resolve_name("vectorized") == "vectorized"

    def test_resolve_name_auto_is_concrete(self):
        assert resolve_name("auto") in ("native-mt", "native", "vectorized")

    def test_env_var_drives_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert resolve_name(None) == "reference"
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "bogus")
        with pytest.raises(ConfigurationError):
            resolve_name(None)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
        assert resolve_name("vectorized") == "vectorized"

    def test_get_backend_has_kernel_surface(self):
        for name in available_backends():
            mod = get_backend(name)
            assert callable(mod.cpa_assign)
            assert callable(mod.ppa_assign)
            assert callable(mod.connected_components)

    def test_params_validate_backend_name(self):
        assert SlicParams(kernel_backend="Vectorized").kernel_backend == (
            "vectorized"
        )
        with pytest.raises(ConfigurationError):
            SlicParams(kernel_backend="fpga")

    def test_params_default_is_none(self):
        assert SlicParams().kernel_backend is None


@pytest.mark.parametrize("backend", OPTIMIZED)
class TestCpaIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(8, 48),
        m=st.floats(1.0, 40.0),
        stride=st.sampled_from([1, 2, 4]),
    )
    def test_float64_bit_identical(self, backend, seed, k, m, stride):
        lab, centers, _, _, s, weight, _, _ = _setup(seed, k, m)
        subset = np.arange(len(centers))[::stride]
        ref = get_backend("reference")
        opt = get_backend(backend)
        d_r = np.full((H, W), np.inf)
        l_r = np.full((H, W), -1, dtype=np.int32)
        d_o = np.full((H, W), np.inf)
        l_o = np.full((H, W), -1, dtype=np.int32)
        n_r = ref.cpa_assign(
            lab, centers, weight, s, d_r, l_r, cluster_indices=subset
        )
        n_o = opt.cpa_assign(
            lab, centers, weight, s, d_o, l_o, cluster_indices=subset
        )
        assert np.array_equal(l_r, l_o)
        assert np.array_equal(d_r, d_o)  # bitwise: includes inf pattern
        assert n_r == n_o

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(8, 32))
    def test_fixed_datapath_bit_identical(self, backend, seed, k):
        lab, centers, _, _, s, weight, dp, codes = _setup(
            seed, k, 10.0, fixed=True
        )
        ref = get_backend("reference")
        opt = get_backend(backend)
        kw = dict(datapath=dp, compactness=10.0, codes=codes)
        d_r = np.full((H, W), np.inf)
        l_r = np.full((H, W), -1, dtype=np.int32)
        d_o = np.full((H, W), np.inf)
        l_o = np.full((H, W), -1, dtype=np.int32)
        n_r = ref.cpa_assign(lab, centers, weight, s, d_r, l_r, **kw)
        n_o = opt.cpa_assign(lab, centers, weight, s, d_o, l_o, **kw)
        assert np.array_equal(l_r, l_o)
        assert np.array_equal(d_r, d_o)
        assert n_r == n_o

    def test_int64_dist_buffer_supported(self, backend):
        """Direct callers may pass an int64 sentinel buffer in fixed mode;
        every backend must accept it (native falls back internally)."""
        lab, centers, _, _, s, weight, dp, codes = _setup(
            3, 12, 10.0, fixed=True
        )
        kw = dict(datapath=dp, compactness=10.0, codes=codes)
        big = np.int64(2**62)
        d_r = np.full((H, W), big)
        l_r = np.full((H, W), -1, dtype=np.int32)
        d_o = np.full((H, W), big)
        l_o = np.full((H, W), -1, dtype=np.int32)
        get_backend("reference").cpa_assign(
            lab, centers, weight, s, d_r, l_r, **kw
        )
        get_backend(backend).cpa_assign(
            lab, centers, weight, s, d_o, l_o, **kw
        )
        assert np.array_equal(l_r, l_o)
        assert np.array_equal(d_r, d_o)


@pytest.mark.parametrize("backend", OPTIMIZED)
class TestPpaIdentity:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(8, 48),
        m=st.floats(1.0, 40.0),
        n_subsets=st.sampled_from([1, 2, 4]),
    )
    def test_float64_bit_identical(self, backend, seed, k, m, n_subsets):
        lab, centers, tiles, cands, s, weight, _, _ = _setup(seed, k, m)
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(pixels.n_pixels)[::n_subsets]
        ref = get_backend("reference").ppa_assign(
            pixels, idx, cands, centers, weight
        )
        opt = get_backend(backend).ppa_assign(
            pixels, idx, cands, centers, weight
        )
        assert np.array_equal(ref, opt)

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), k=st.integers(8, 32))
    def test_fixed_datapath_bit_identical(self, backend, seed, k):
        lab, centers, tiles, cands, s, weight, dp, codes = _setup(
            seed, k, 10.0, fixed=True
        )
        pixels = PixelArrays(lab, tiles, datapath=dp, codes=codes)
        idx = np.arange(pixels.n_pixels)
        kw = dict(compactness=10.0, grid_s=s)
        ref = get_backend("reference").ppa_assign(
            pixels, idx, cands, centers, weight, **kw
        )
        opt = get_backend(backend).ppa_assign(
            pixels, idx, cands, centers, weight, **kw
        )
        assert np.array_equal(ref, opt)

    def test_empty_subset(self, backend):
        lab, centers, tiles, cands, s, weight, _, _ = _setup(1, 12, 10.0)
        pixels = PixelArrays(lab, tiles)
        out = get_backend(backend).ppa_assign(
            pixels, np.array([], dtype=np.int64), cands, centers, weight
        )
        assert out.shape == (0,)
        assert out.dtype == np.int32


@pytest.mark.parametrize("backend", OPTIMIZED)
class TestConnectedComponentsIdentity:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_labels=st.integers(1, 8),
        h=st.integers(1, 40),
        w=st.integers(1, 40),
    )
    def test_random_maps_identical(self, backend, seed, n_labels, h, w):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, n_labels, size=(h, w)).astype(np.int32)
        ref_c, ref_n = get_backend("reference").connected_components(labels)
        opt_c, opt_n = get_backend(backend).connected_components(labels)
        assert ref_n == opt_n
        assert np.array_equal(ref_c, opt_c)

    def test_spiral_chain_identical(self, backend):
        """A single long snaking component — worst case for propagation
        depth, exercising the pointer-jumping convergence loop."""
        h, w = 31, 31
        labels = np.ones((h, w), dtype=np.int32)
        # Comb pattern: vertical teeth connected only along the top row.
        for x in range(1, w, 2):
            labels[1:, x] = 0
        ref_c, ref_n = get_backend("reference").connected_components(labels)
        opt_c, opt_n = get_backend(backend).connected_components(labels)
        assert ref_n == opt_n
        assert np.array_equal(ref_c, opt_c)


class TestEngineBackendEquivalence:
    def test_end_to_end_labels_identical(self):
        from repro.core import slic

        rng = np.random.default_rng(11)
        image = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
        results = {
            name: slic(image, n_superpixels=30, kernel_backend=name)
            for name in available_backends()
        }
        base = results["reference"].labels
        for name, res in results.items():
            assert np.array_equal(base, res.labels), name

    def test_end_to_end_cpa_fixed_identical(self):
        from repro.core import slic

        rng = np.random.default_rng(12)
        image = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
        results = {
            name: slic(
                image,
                n_superpixels=24,
                architecture="cpa",
                datapath=FixedDatapath(bits=8),
                kernel_backend=name,
            )
            for name in available_backends()
        }
        base = results["reference"].labels
        for name, res in results.items():
            assert np.array_equal(base, res.labels), name


class TestNativeBackend:
    def test_probe_does_not_raise(self):
        assert native_mod.is_available() in (True, False)

    @pytest.mark.skipif(
        "native" not in OPTIMIZED, reason="no C compiler in environment"
    )
    def test_compile_cache_reused(self, tmp_path, monkeypatch):
        """A fresh cache dir gets exactly one .so; a second build reuses
        it (hash-keyed, so reruns don't recompile)."""
        import repro.kernels.native as native

        monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
        first = native._build()
        assert first.exists() and first.parent == tmp_path
        mtime = first.stat().st_mtime_ns
        second = native._build()
        assert second == first
        assert second.stat().st_mtime_ns == mtime


class TestLabCodesIdentity:
    """The fixed-point RGB->Lab conversion kernel across backends."""

    @pytest.mark.parametrize("name", OPTIMIZED)
    @pytest.mark.parametrize("bits,uniform", [(8, True), (10, True), (8, False)])
    def test_matches_reference(self, name, bits, uniform):
        from repro.color.hw_convert import HwColorConverter, LabEncoding

        rng = np.random.default_rng(bits * 7 + uniform)
        rgb = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
        conv = HwColorConverter(encoding=LabEncoding(bits, uniform=uniform))
        want = get_backend("reference").lab_codes(conv, rgb)
        got = get_backend(name).lab_codes(conv, rgb)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_extreme_colors_match(self, name):
        """Saturation corners: black, white, pure primaries."""
        from repro.color.hw_convert import HwColorConverter

        corners = np.array(
            [
                [0, 0, 0], [255, 255, 255], [255, 0, 0],
                [0, 255, 0], [0, 0, 255], [255, 255, 0],
                [0, 255, 255], [255, 0, 255], [1, 1, 1],
            ],
            dtype=np.uint8,
        ).reshape(3, 3, 3)
        conv = HwColorConverter()
        want = get_backend("reference").lab_codes(conv, corners)
        got = get_backend(name).lab_codes(conv, corners)
        assert np.array_equal(got, want)

    def test_convert_codes_dispatches_per_backend(self):
        from repro.color.hw_convert import HwColorConverter

        rng = np.random.default_rng(3)
        rgb = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
        conv = HwColorConverter()
        base = conv.convert_codes(rgb, backend="reference")
        for name in OPTIMIZED:
            assert np.array_equal(conv.convert_codes(rgb, backend=name), base)


class TestLabFromCodesIdentity:
    """The fused conversion kernel: (decoded lab, codes) in one pass."""

    @pytest.mark.parametrize("name", OPTIMIZED)
    @pytest.mark.parametrize("bits,uniform", [(8, True), (10, True), (8, False)])
    def test_matches_reference(self, name, bits, uniform):
        from repro.color.hw_convert import HwColorConverter, LabEncoding

        rng = np.random.default_rng(bits * 11 + uniform)
        rgb = rng.integers(0, 256, size=(H, W, 3), dtype=np.uint8)
        conv = HwColorConverter(encoding=LabEncoding(bits, uniform=uniform))
        want_lab, want_codes = get_backend("reference").lab_from_codes(
            conv, rgb
        )
        got_lab, got_codes = get_backend(name).lab_from_codes(conv, rgb)
        assert np.array_equal(got_lab, want_lab)
        assert np.array_equal(got_codes, want_codes)

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_equals_two_step_sequence(self, name):
        """Fused output must be bitwise the convert-then-decode result."""
        from repro.color.hw_convert import HwColorConverter

        rng = np.random.default_rng(17)
        rgb = rng.integers(0, 256, size=(20, 31, 3), dtype=np.uint8)
        conv = HwColorConverter()
        codes = get_backend(name).lab_codes(conv, rgb)
        lab = conv.encoding.decode(codes)
        got_lab, got_codes = get_backend(name).lab_from_codes(conv, rgb)
        assert np.array_equal(got_codes, codes)
        assert np.array_equal(got_lab, lab)

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        h=st.integers(1, 17),
        w=st.integers(1, 23),
    )
    def test_property_tiny_shapes(self, seed, h, w):
        """Down to 1x1: every backend matches the reference pair."""
        from repro.color.hw_convert import HwColorConverter

        rng = np.random.default_rng(seed)
        rgb = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        conv = HwColorConverter()
        want_lab, want_codes = get_backend("reference").lab_from_codes(
            conv, rgb
        )
        for name in OPTIMIZED:
            got_lab, got_codes = get_backend(name).lab_from_codes(conv, rgb)
            assert np.array_equal(got_lab, want_lab), name
            assert np.array_equal(got_codes, want_codes), name

    def test_convert_fused_dispatches_per_backend(self):
        from repro.color.hw_convert import HwColorConverter

        rng = np.random.default_rng(19)
        rgb = rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
        conv = HwColorConverter()
        base_lab, base_codes = conv.convert_fused(rgb, backend="reference")
        assert np.array_equal(base_codes, conv.convert_codes(rgb))
        for name in OPTIMIZED:
            lab, codes = conv.convert_fused(rgb, backend=name)
            assert np.array_equal(lab, base_lab), name
            assert np.array_equal(codes, base_codes), name


class TestSigmaAccumulateIdentity:
    """The one-pass sigma accumulation kernel across backends."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        h=st.integers(1, 24),
        w=st.integers(1, 31),
        k=st.integers(1, 40),
        stride=st.sampled_from([0, 1, 2, 5]),
    )
    def test_float_rows_bit_identical(self, seed, h, w, k, stride):
        """Float lab rows, full frame and strided subsets, K clusters
        with arbitrary empty ones (labels drawn from [0, K))."""
        rng = np.random.default_rng(seed)
        lab_flat = rng.standard_normal((h * w, 3)) * 40.0
        if stride == 0:
            idx = None
            m = h * w
        else:
            idx = np.arange(0, h * w, stride, dtype=np.int64)
            m = len(idx)
        labels = rng.integers(0, k, size=m).astype(np.int32)
        want_s, want_c = get_backend("reference").sigma_accumulate(
            labels, k, w, lab_flat=lab_flat, idx=idx
        )
        for name in OPTIMIZED:
            got_s, got_c = get_backend(name).sigma_accumulate(
                labels, k, w, lab_flat=lab_flat, idx=idx
            )
            assert np.array_equal(got_s, want_s), name
            assert np.array_equal(got_c, want_c), name

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 24),
        bits=st.sampled_from([8, 10]),
    )
    def test_fixed_codes_bit_identical(self, seed, k, bits):
        from repro.color.hw_convert import LabEncoding

        rng = np.random.default_rng(seed)
        enc = LabEncoding(bits)
        h, w = 13, 17
        codes_flat = rng.integers(
            0, enc.code_max + 1, size=(h * w, 3)
        ).astype(np.int64)
        idx = rng.permutation(h * w)[: h * w // 2].astype(np.int64)
        labels = rng.integers(0, k, size=len(idx)).astype(np.int32)
        want_s, want_c = get_backend("reference").sigma_accumulate(
            labels, k, w, codes_flat=codes_flat, encoding=enc, idx=idx
        )
        for name in OPTIMIZED:
            got_s, got_c = get_backend(name).sigma_accumulate(
                labels, k, w, codes_flat=codes_flat, encoding=enc, idx=idx
            )
            assert np.array_equal(got_s, want_s), name
            assert np.array_equal(got_c, want_c), name

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_empty_batch(self, name):
        """M == 0 returns all-zero partials (empty-cluster fallback is
        the accumulator's job; the kernel just reports zero counts)."""
        want_s, want_c = get_backend("reference").sigma_accumulate(
            np.array([], dtype=np.int32), 7, 5,
            lab_flat=np.zeros((0, 3)),
        )
        got_s, got_c = get_backend(name).sigma_accumulate(
            np.array([], dtype=np.int32), 7, 5,
            lab_flat=np.zeros((0, 3)),
        )
        assert np.array_equal(got_s, want_s) and (got_s == 0).all()
        assert np.array_equal(got_c, want_c) and (got_c == 0).all()

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_matches_accumulator_add(self, name):
        """The kernel partials equal SigmaAccumulator.add on the
        materialized (M, 5) values matrix — the lab5 contract."""
        from repro.core.accumulators import SigmaAccumulator

        rng = np.random.default_rng(23)
        h, w = 11, 13
        lab_flat = rng.standard_normal((h * w, 3)) * 30.0
        labels = rng.integers(0, 9, size=h * w).astype(np.int32)
        vals = np.empty((h * w, 5))
        vals[:, 0:3] = lab_flat
        vals[:, 3] = np.arange(h * w) % w
        vals[:, 4] = np.arange(h * w) // w
        acc = SigmaAccumulator(9)
        acc.add(vals, labels)
        got_s, got_c = get_backend(name).sigma_accumulate(
            labels, 9, w, lab_flat=lab_flat
        )
        assert np.array_equal(got_s, acc.sums)
        assert np.array_equal(got_c, acc.counts)


class TestMergeSmallIdentity:
    """The enforce_connectivity merge walk across backends."""

    @pytest.mark.parametrize("name", OPTIMIZED)
    @pytest.mark.parametrize("min_size", [2, 5, 25, 400])
    def test_enforce_connectivity_matches_reference(self, name, min_size):
        from repro.core.connectivity import enforce_connectivity

        rng = np.random.default_rng(min_size)
        labels = rng.integers(0, 15, size=(H, W)).astype(np.int32)
        want = enforce_connectivity(labels, min_size, backend="reference")
        got = enforce_connectivity(labels, min_size, backend=name)
        assert np.array_equal(got, want)

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_tie_breaks_match_reference(self, name):
        """Equal border weights must resolve to the same neighbor."""
        from repro.core.connectivity import enforce_connectivity

        # A one-pixel stray with symmetric borders to two regions.
        labels = np.zeros((9, 9), dtype=np.int32)
        labels[:, 5:] = 1
        labels[4, 4] = 2
        want = enforce_connectivity(labels, 3, backend="reference")
        got = enforce_connectivity(labels, 3, backend=name)
        assert np.array_equal(got, want)

    @given(seed=st.integers(0, 200), min_size=st.integers(2, 60))
    @settings(max_examples=25, deadline=None)
    def test_property_random_maps(self, seed, min_size):
        from repro.core.connectivity import enforce_connectivity

        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 8, size=(24, 30)).astype(np.int32)
        want = enforce_connectivity(labels, min_size, backend="reference")
        for name in OPTIMIZED:
            got = enforce_connectivity(labels, min_size, backend=name)
            assert np.array_equal(got, want), name


class TestMetricKernelsIdentity:
    """contingency_table / chamfer_distance across backends."""

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_contingency_table_matches(self, name):
        from repro.metrics import contingency_table

        rng = np.random.default_rng(5)
        a = rng.integers(0, 11, size=(40, 55)).astype(np.int32)
        b = rng.integers(0, 6, size=(40, 55)).astype(np.int32)
        want = contingency_table(a, b, backend="reference")
        got = contingency_table(a, b, backend=name)
        assert np.array_equal(got, want)
        assert got.sum() == a.size

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_chamfer_matches_on_sparse_and_dense_masks(self, name):
        from repro.metrics import chamfer_distance

        rng = np.random.default_rng(9)
        for density in (0.002, 0.05, 0.6):
            mask = rng.random((48, 64)) < density
            want = chamfer_distance(mask, backend="reference")
            got = chamfer_distance(mask, backend=name)
            assert np.array_equal(got, want), density

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_chamfer_all_false_is_inf(self, name):
        from repro.metrics import chamfer_distance

        out = chamfer_distance(np.zeros((7, 8), dtype=bool), backend=name)
        assert np.isinf(out).all()

    @pytest.mark.parametrize("name", OPTIMIZED)
    def test_chamfer_all_true_is_zero(self, name):
        from repro.metrics import chamfer_distance

        out = chamfer_distance(np.ones((7, 8), dtype=bool), backend=name)
        assert (out == 0).all()
