"""Tests for the experiment registry (the fast analytical experiments run
for real; the corpus-heavy ones are covered by their drivers' own tests and
by the benchmarks)."""

import pytest

from repro.analysis import EXPERIMENTS, run_experiment
from repro.errors import ConfigurationError


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig2", "table1", "table2", "table3", "sec61", "fig6",
            "table4", "table5",
        }

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table99")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("table3", scale="huge")


class TestAnalyticalExperiments:
    """The model-only experiments are fast enough for unit tests."""

    def test_table2(self):
        res = run_experiment("table2")
        assert len(res.rows) == 2
        assert "PPA" in res.notes
        cpa_row = res.rows[0]
        assert cpa_row[0] == "CPA"
        assert cpa_row[1] == pytest.approx(311, rel=0.05)  # ~318 MB

    def test_table3(self):
        res = run_experiment("table3")
        assert len(res.rows) == 5
        labels = [r[0] for r in res.rows]
        assert "9-9-6 way" in labels

    def test_table4(self):
        res = run_experiment("table4")
        assert len(res.rows) == 3
        hd = next(r for r in res.rows if r[0] == "1920x1080")
        assert hd[4] == pytest.approx(32.8, rel=0.03)  # latency_ms

    def test_table5(self):
        res = run_experiment("table5")
        assert len(res.rows) == 3
        assert "500" in res.notes or "5" in res.notes

    def test_fig6(self):
        res = run_experiment("fig6")
        assert res.extras["smallest_real_time_kb"] == 4
        times = [r[1] for r in res.rows]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_result_headers_match_rows(self):
        for exp_id in ("table2", "table3", "table4", "table5", "fig6"):
            res = run_experiment(exp_id)
            for row in res.rows:
                assert len(row) == len(res.headers), exp_id
