"""Integration tests: full-accelerator reports vs Tables 4/5 and Fig 6."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw import (
    AcceleratorConfig,
    AcceleratorModel,
    ClusterWays,
    PAPER_FIG6_BUFFERS_KB,
    PAPER_TABLE4,
    REAL_TIME_MS,
    table4_configs,
)
from repro.types import Resolution


class TestTable4Reproduction:
    @pytest.mark.parametrize("name", list(PAPER_TABLE4))
    def test_latency_within_3pct(self, name):
        report = AcceleratorModel(table4_configs()[name]).report()
        assert report.latency_ms == pytest.approx(
            PAPER_TABLE4[name]["latency_ms"], rel=0.03
        )

    @pytest.mark.parametrize("name", list(PAPER_TABLE4))
    def test_area_within_2pct(self, name):
        report = AcceleratorModel(table4_configs()[name]).report()
        assert report.area_mm2 == pytest.approx(
            PAPER_TABLE4[name]["area_mm2"], rel=0.02
        )

    @pytest.mark.parametrize("name", list(PAPER_TABLE4))
    def test_fps_matches(self, name):
        report = AcceleratorModel(table4_configs()[name]).report()
        assert report.fps == pytest.approx(PAPER_TABLE4[name]["fps"], rel=0.03)

    def test_hd_power_and_energy_close(self):
        report = AcceleratorModel(table4_configs()["1920x1080"]).report()
        assert report.power_mw == pytest.approx(49.0, rel=0.05)
        assert report.energy_per_frame_mj == pytest.approx(1.6, rel=0.05)

    def test_all_published_configs_are_real_time(self):
        for name, cfg in table4_configs().items():
            assert AcceleratorModel(cfg).report().real_time, name

    def test_perf_per_area_ordering(self):
        """Smaller resolutions give better fps/mm^2 (Table 4's trend)."""
        reports = {
            name: AcceleratorModel(cfg).report()
            for name, cfg in table4_configs().items()
        }
        assert (
            reports["640x480"].perf_per_area_fps_mm2
            > reports["1280x768"].perf_per_area_fps_mm2
            > reports["1920x1080"].perf_per_area_fps_mm2
        )


class TestFig6Reproduction:
    def test_smallest_real_time_buffer_is_4kb(self):
        base = table4_configs()["1920x1080"]
        real_time = {
            kb: AcceleratorModel(base.with_(buffer_kb_per_channel=float(kb)))
            .report()
            .real_time
            for kb in PAPER_FIG6_BUFFERS_KB
        }
        assert not real_time[1]
        assert not real_time[2]
        assert real_time[4]
        assert real_time[128]

    def test_latency_monotone_in_buffer_size(self):
        base = table4_configs()["1920x1080"]
        lat = [
            AcceleratorModel(base.with_(buffer_kb_per_channel=float(kb)))
            .report()
            .latency_ms
            for kb in PAPER_FIG6_BUFFERS_KB
        ]
        assert all(a >= b for a, b in zip(lat, lat[1:]))

    def test_diminishing_returns(self):
        """Fig 6's flattening: 1->4 kB saves much more than 16->128 kB."""
        base = table4_configs()["1920x1080"]
        t = lambda kb: AcceleratorModel(
            base.with_(buffer_kb_per_channel=float(kb))
        ).report().latency_ms
        assert (t(1) - t(4)) > 5 * (t(16) - t(128))


class TestLatencyBreakdown:
    def test_section7_decomposition(self):
        """Color ~1.4 ms; cluster update ~31.4 ms with ~20.3 compute and
        ~11.1 memory (Section 7), within model tolerance."""
        lb = AcceleratorModel(table4_configs()["1920x1080"]).latency_breakdown()
        assert lb.color_conversion_ms == pytest.approx(1.4, rel=0.05)
        assert lb.cluster_update_ms == pytest.approx(31.4, rel=0.05)
        assert lb.compute_ms == pytest.approx(20.3, rel=0.05)
        assert lb.memory_ms == pytest.approx(11.1, rel=0.05)

    def test_total_is_sum(self):
        lb = AcceleratorModel().latency_breakdown()
        assert lb.total_ms == pytest.approx(
            lb.color_conversion_ms
            + lb.cluster_compute_ms
            + lb.center_update_ms
            + lb.memory_transfer_ms
            + lb.memory_stall_ms
        )

    def test_center_update_resolution_independent(self):
        hd = AcceleratorModel(table4_configs()["1920x1080"]).latency_breakdown()
        vga = AcceleratorModel(table4_configs()["640x480"]).latency_breakdown()
        assert hd.center_update_ms == pytest.approx(vga.center_update_ms)


class TestConfigKnobs:
    def test_iterative_ways_not_real_time(self):
        cfg = table4_configs()["1920x1080"].with_(ways=ClusterWays(1, 1, 1))
        report = AcceleratorModel(cfg).report()
        assert not report.real_time  # 9 cycles/pixel cannot reach 30 fps

    def test_two_cores_speed_up_compute(self):
        base = table4_configs()["1920x1080"]
        one = AcceleratorModel(base).latency_breakdown()
        two = AcceleratorModel(base.with_(n_cores=2)).latency_breakdown()
        assert two.cluster_compute_ms == pytest.approx(one.cluster_compute_ms / 2)
        # Memory and center update do not scale (shared resources).
        assert two.memory_stall_ms == one.memory_stall_ms

    def test_more_cores_more_area(self):
        base = table4_configs()["1920x1080"]
        a1 = AcceleratorModel(base).area_mm2()
        a2 = AcceleratorModel(base.with_(n_cores=2)).area_mm2()
        assert a2 > a1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(n_superpixels=0)
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(buffer_kb_per_channel=0)
        with pytest.raises(ConfigurationError):
            AcceleratorConfig(
                resolution=Resolution(10, 10), n_superpixels=1000
            )

    def test_energy_breakdown_sums_to_report(self):
        model = AcceleratorModel()
        report = model.report()
        parts = model.energy_breakdown_uj(report.latency_ms)
        assert sum(parts.values()) * 1e-3 == pytest.approx(
            report.energy_per_frame_mj
        )

    def test_area_breakdown_sums(self):
        model = AcceleratorModel()
        assert sum(model.area_breakdown().values()) == pytest.approx(
            model.area_mm2()
        )


class TestFunctionalSimulation:
    def test_simulate_runs_quantized_pipeline(self, small_scene):
        model = AcceleratorModel()
        result, report = model.simulate(small_scene.image, n_superpixels=24)
        assert result.labels.shape == small_scene.image.shape[:2]
        assert result.params.datapath.bits == 8
        assert report.config.resolution.shape == small_scene.image.shape[:2]

    def test_simulate_defaults_density(self, small_scene):
        model = AcceleratorModel()  # 1080p/5000 SP -> ~415 px per SP
        result, report = model.simulate(small_scene.image)
        expected_k = round(
            small_scene.image.shape[0] * small_scene.image.shape[1] / 414.72
        )
        assert abs(report.config.n_superpixels - expected_k) <= 1
