"""Tests for the DVFS extension."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    AcceleratorModel,
    ClusterWays,
    OperatingPoint,
    TECH_16NM,
    min_real_time_point,
    report_at,
    scaled_tech,
    table4_configs,
)


class TestOperatingPoint:
    def test_nominal_point(self):
        pt = OperatingPoint.at_frequency(TECH_16NM.frequency_hz)
        assert pt.voltage == pytest.approx(TECH_16NM.voltage)

    def test_linear_fv_rule(self):
        pt = OperatingPoint.at_frequency(1.2e9)
        assert pt.voltage == pytest.approx(TECH_16NM.voltage * 0.75)

    def test_voltage_floor(self):
        pt = OperatingPoint.at_frequency(0.1e9)
        assert pt.voltage == pytest.approx(TECH_16NM.voltage * 0.6)

    def test_overclock_rejected(self):
        with pytest.raises(HardwareModelError):
            OperatingPoint.at_frequency(2 * TECH_16NM.frequency_hz)

    def test_nonpositive_rejected(self):
        with pytest.raises(HardwareModelError):
            OperatingPoint.at_frequency(0.0)


class TestScaledTech:
    def test_energy_scales_quadratically_with_voltage(self):
        pt = OperatingPoint.at_frequency(1.2e9)  # V ratio 0.75
        tech = scaled_tech(pt)
        assert tech.e_add8 == pytest.approx(TECH_16NM.e_add8 * 0.75 ** 2)
        assert tech.e_mul8 == pytest.approx(TECH_16NM.e_mul8 * 0.75 ** 2)

    def test_voltage_floor_limits_energy_saving(self):
        # Below the floor, further frequency cuts stop reducing energy/op.
        slow = scaled_tech(OperatingPoint.at_frequency(0.2e9))
        slower = scaled_tech(OperatingPoint.at_frequency(0.1e9))
        assert slow.e_add8 == pytest.approx(slower.e_add8)

    def test_frequency_applied(self):
        pt = OperatingPoint.at_frequency(0.8e9)
        assert scaled_tech(pt).frequency_hz == 0.8e9


class TestRealTimeScaling:
    def test_all_table4_configs_meet_budget_at_min_point(self):
        for name, cfg in table4_configs().items():
            pt = min_real_time_point(cfg)
            report = report_at(cfg, pt)
            assert report.real_time, name

    def test_lower_resolution_allows_lower_frequency(self):
        cfgs = table4_configs()
        f_hd = min_real_time_point(cfgs["1920x1080"]).frequency_hz
        f_vga = min_real_time_point(cfgs["640x480"]).frequency_hz
        assert f_vga < f_hd

    def test_vga_energy_saving_substantial(self):
        """The paper's "scale gracefully down" claim, quantified: VGA at
        its minimum real-time clock saves over half the frame energy."""
        cfg = table4_configs()["640x480"]
        nominal = AcceleratorModel(cfg).report()
        scaled = report_at(cfg, min_real_time_point(cfg))
        saving = 1.0 - scaled.energy_per_frame_mj / nominal.energy_per_frame_mj
        assert saving > 0.5

    def test_hd_has_no_slack(self):
        """1080p already sits at the real-time edge: no frequency headroom."""
        cfg = table4_configs()["1920x1080"]
        pt = min_real_time_point(cfg)
        assert pt.frequency_hz == pytest.approx(TECH_16NM.frequency_hz, rel=0.01)

    def test_infeasible_config_rejected(self):
        cfg = table4_configs()["1920x1080"].with_(ways=ClusterWays(1, 1, 1))
        with pytest.raises(HardwareModelError):
            min_real_time_point(cfg)

    def test_scaling_preserves_latency_budget(self):
        cfg = table4_configs()["640x480"]
        report = report_at(cfg, min_real_time_point(cfg))
        assert report.latency_ms <= 1000.0 / 30.0

    def test_guard_band_validation(self):
        cfg = table4_configs()["640x480"]
        with pytest.raises(HardwareModelError):
            min_real_time_point(cfg, guard_band=0.9)
        with pytest.raises(HardwareModelError):
            min_real_time_point(cfg, budget_ms=-1.0)
