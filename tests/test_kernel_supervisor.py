"""Kernel backend supervision: self-test, demotion chain, forcing."""

import numpy as np
import pytest

from repro.core import SlicParams
from repro.errors import ConfigurationError
from repro.kernels import available_backends
from repro.kernels.supervisor import (
    DEMOTION_CHAIN,
    FAULT_ENV,
    reset_supervision,
    self_test,
    supervised_resolve,
)
from repro.obs import MemorySink, Tracer
from repro.parallel import ParallelRunner, synthetic_batch
from repro.resilience import FaultPlan


@pytest.fixture(autouse=True)
def _fresh_supervision():
    reset_supervision()
    yield
    reset_supervision()


def _require(*names):
    missing = [n for n in names if n not in available_backends()]
    if missing:
        pytest.skip(f"backend(s) unavailable: {', '.join(missing)}")


def _successor(name):
    """First chain entry after ``name`` that is available to demote to."""
    for cand in DEMOTION_CHAIN[DEMOTION_CHAIN.index(name) + 1:]:
        if cand in available_backends():
            return cand
    return "reference"


def _demotion_cases():
    """Demotion table derived from DEMOTION_CHAIN itself, so adding a
    backend to the chain extends coverage without editing this file.

    Each row: (requested, forced_failures, survivor, demoted_from).
    ``survivor=None`` means "the first available successor" (resolved at
    run time, since native backends need a C compiler).
    """
    cases = []
    for i, name in enumerate(DEMOTION_CHAIN[:-1]):
        cases.append(
            pytest.param(name, {name}, None, name, id=f"{name}-one-step")
        )
        cascade = set(DEMOTION_CHAIN[i:-1])
        cases.append(
            pytest.param(
                name, cascade, "reference", name, id=f"{name}-to-reference"
            )
        )
    return cases


class TestSelfTest:
    def test_every_available_backend_passes(self):
        for name in available_backends():
            self_test(name)  # must not raise

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            self_test("fpga")

    def test_native_mt_vector_at_extreme_thread_counts(self):
        """The native-mt known-answer vector must hold at both the
        serial clamp and the MAX_THREADS pool width."""
        _require("native-mt")
        from repro.kernels.native_mt import MAX_THREADS, thread_context

        for nt in (1, MAX_THREADS):
            with thread_context(nt):
                self_test("native-mt")
            reset_supervision()


    @pytest.mark.parametrize("kernel", ["sigma_accumulate", "lab_from_codes"])
    def test_broken_new_kernels_fail_self_test(self, kernel, monkeypatch):
        """A backend whose sigma/fused-color kernel returns garbage must
        flunk its known-answer vector (the vectors are load-bearing)."""
        from repro.kernels import vectorized

        def garbage(*args, **kwargs):
            if kernel == "sigma_accumulate":
                n = args[1]
                return (
                    np.ones((n, 5)),
                    np.zeros(n, dtype=np.int64),
                )
            rgb = args[1]
            return (
                np.zeros(rgb.shape, dtype=np.float64),
                np.zeros(rgb.shape, dtype=np.int64),
            )

        monkeypatch.setattr(vectorized, kernel, garbage)
        with pytest.raises(ConfigurationError, match=kernel.split(".")[0]):
            self_test("vectorized")

    @pytest.mark.parametrize("kernel", ["sigma_accumulate", "lab_from_codes"])
    def test_broken_new_kernel_demotes(self, kernel, monkeypatch):
        from repro.kernels import vectorized

        real = getattr(vectorized, kernel)

        def garbage(*args, **kwargs):
            out = real(*args, **kwargs)
            return (out[0] + 1, out[1])

        monkeypatch.setattr(vectorized, kernel, garbage)
        verdict = supervised_resolve("vectorized")
        assert verdict.name == "reference"
        assert verdict.demoted_from == "vectorized"


class TestSupervisedResolve:
    @pytest.mark.parametrize("name", DEMOTION_CHAIN)
    def test_healthy_backend_is_not_demoted(self, name):
        _require(name)
        verdict = supervised_resolve(name)
        assert verdict.name == name
        assert not verdict.demoted
        assert verdict.demoted_from is None

    @pytest.mark.parametrize(
        "requested,forced,survivor,demoted_from", _demotion_cases()
    )
    def test_demotion_chain_table(
        self, requested, forced, survivor, demoted_from
    ):
        _require(requested)
        if survivor is None:
            survivor = _successor(requested)
        verdict = supervised_resolve(requested, forced_failures=forced)
        assert verdict.name == survivor
        assert verdict.demoted_from == demoted_from
        assert verdict.demoted

    def test_reference_failure_is_fatal(self):
        with pytest.raises(ConfigurationError, match="every kernel backend"):
            supervised_resolve(
                "reference", forced_failures=set(DEMOTION_CHAIN)
            )

    def test_env_var_forces_failures(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "vectorized")
        verdict = supervised_resolve("vectorized")
        assert verdict.name == "reference"
        assert verdict.demoted_from == "vectorized"

    def test_memoized_per_forcing_set(self):
        a = supervised_resolve("vectorized")
        b = supervised_resolve("vectorized")
        assert a is b
        c = supervised_resolve("vectorized", forced_failures={"vectorized"})
        assert c is not a

    def test_demotion_emits_telemetry(self):
        tracer = Tracer(MemorySink())
        supervised_resolve(
            "vectorized", tracer=tracer, forced_failures={"vectorized"}
        )
        tracer.flush()
        names = [e.get("name") for e in tracer.sink.events]
        assert "kernels.selftest_failures" in names
        assert "kernels.demotions" in names
        events = [
            e for e in tracer.sink.events if e.get("name") == "kernels.demoted"
        ]
        assert events and events[0]["attrs"]["demoted_to"] == "reference"
        tracer.close()


class TestSupervisionInRunner:
    @staticmethod
    def _params(backend):
        return SlicParams(
            n_superpixels=40,
            max_iterations=4,
            subsample_ratio=0.5,
            convergence_threshold=0.3,
            kernel_backend=backend,
        )

    @pytest.mark.parametrize("requested", DEMOTION_CHAIN[:-1])
    def test_kernel_fail_fault_records_demotion(self, requested):
        _require(requested)
        frames = synthetic_batch(2, height=50, width=70, seed=2)
        res = ParallelRunner(
            self._params(requested), faults=FaultPlan.parse("kernel_fail@0:0")
        ).run_batch(frames)
        rec = res.records[0]
        assert rec.ok
        assert rec.kernel_backend == _successor(requested)
        assert rec.demoted_from == requested
        # The un-faulted frame used the healthy requested backend.
        assert res.records[1].kernel_backend == requested
        assert res.records[1].demoted_from is None

    @pytest.mark.parametrize("requested", ["vectorized", "native-mt"])
    def test_demoted_output_is_bit_identical(self, requested):
        # Demotion changes the implementation, never the answer.
        _require(requested)
        frames = synthetic_batch(1, height=50, width=70, seed=3)
        demoted = ParallelRunner(
            self._params(requested), faults=FaultPlan.parse("kernel_fail@0:0")
        ).run_batch(frames)
        clean = ParallelRunner(self._params(requested)).run_batch(frames)
        assert np.array_equal(
            demoted.records[0].result.labels, clean.records[0].result.labels
        )
