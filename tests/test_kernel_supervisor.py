"""Kernel backend supervision: self-test, demotion chain, forcing."""

import numpy as np
import pytest

from repro.core import SlicParams
from repro.errors import ConfigurationError
from repro.kernels import available_backends
from repro.kernels.supervisor import (
    DEMOTION_CHAIN,
    FAULT_ENV,
    reset_supervision,
    self_test,
    supervised_resolve,
)
from repro.obs import MemorySink, Tracer
from repro.parallel import ParallelRunner, synthetic_batch
from repro.resilience import FaultPlan


@pytest.fixture(autouse=True)
def _fresh_supervision():
    reset_supervision()
    yield
    reset_supervision()


class TestSelfTest:
    def test_every_available_backend_passes(self):
        for name in available_backends():
            self_test(name)  # must not raise

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            self_test("fpga")


class TestSupervisedResolve:
    def test_healthy_backend_is_not_demoted(self):
        verdict = supervised_resolve("vectorized")
        assert verdict.name == "vectorized"
        assert not verdict.demoted
        assert verdict.demoted_from is None

    def test_forced_failure_demotes_down_the_chain(self):
        verdict = supervised_resolve(
            "vectorized", forced_failures={"vectorized"}
        )
        assert verdict.name == "reference"
        assert verdict.demoted_from == "vectorized"
        assert verdict.demoted

    def test_chain_walks_all_the_way_to_reference(self):
        verdict = supervised_resolve(
            "native", forced_failures={"native", "vectorized"}
        )
        assert verdict.name == "reference"
        assert verdict.demoted_from == "native"

    def test_reference_failure_is_fatal(self):
        with pytest.raises(ConfigurationError, match="every kernel backend"):
            supervised_resolve(
                "reference", forced_failures=set(DEMOTION_CHAIN)
            )

    def test_env_var_forces_failures(self, monkeypatch):
        monkeypatch.setenv(FAULT_ENV, "vectorized")
        verdict = supervised_resolve("vectorized")
        assert verdict.name == "reference"
        assert verdict.demoted_from == "vectorized"

    def test_memoized_per_forcing_set(self):
        a = supervised_resolve("vectorized")
        b = supervised_resolve("vectorized")
        assert a is b
        c = supervised_resolve("vectorized", forced_failures={"vectorized"})
        assert c is not a

    def test_demotion_emits_telemetry(self):
        tracer = Tracer(MemorySink())
        supervised_resolve(
            "vectorized", tracer=tracer, forced_failures={"vectorized"}
        )
        tracer.flush()
        names = [e.get("name") for e in tracer.sink.events]
        assert "kernels.selftest_failures" in names
        assert "kernels.demotions" in names
        events = [
            e for e in tracer.sink.events if e.get("name") == "kernels.demoted"
        ]
        assert events and events[0]["attrs"]["demoted_to"] == "reference"
        tracer.close()


class TestSupervisionInRunner:
    PARAMS = SlicParams(
        n_superpixels=40,
        max_iterations=4,
        subsample_ratio=0.5,
        convergence_threshold=0.3,
        kernel_backend="vectorized",
    )

    def test_kernel_fail_fault_records_demotion(self):
        frames = synthetic_batch(2, height=50, width=70, seed=2)
        res = ParallelRunner(
            self.PARAMS, faults=FaultPlan.parse("kernel_fail@0:0")
        ).run_batch(frames)
        rec = res.records[0]
        assert rec.ok
        assert rec.kernel_backend == "reference"
        assert rec.demoted_from == "vectorized"
        # The un-faulted frame used the healthy requested backend.
        assert res.records[1].kernel_backend == "vectorized"
        assert res.records[1].demoted_from is None

    def test_demoted_output_is_bit_identical(self):
        # Demotion changes the implementation, never the answer.
        frames = synthetic_batch(1, height=50, width=70, seed=3)
        demoted = ParallelRunner(
            self.PARAMS, faults=FaultPlan.parse("kernel_fail@0:0")
        ).run_batch(frames)
        clean = ParallelRunner(self.PARAMS).run_batch(frames)
        assert np.array_equal(
            demoted.records[0].result.labels, clean.records[0].result.labels
        )
