"""Unit tests for the PPA tile / 9-candidate structures."""

import numpy as np
import pytest

from repro.core import candidate_map, dynamic_candidate_map, tile_map


class TestTileMap:
    def test_shape_and_range(self):
        tiles = tile_map((40, 60), 4, 6)
        assert tiles.shape == (40, 60)
        assert tiles.min() == 0
        assert tiles.max() == 23

    def test_row_major_ordering(self):
        tiles = tile_map((20, 20), 2, 2)
        assert tiles[0, 0] == 0
        assert tiles[0, -1] == 1
        assert tiles[-1, 0] == 2
        assert tiles[-1, -1] == 3

    def test_tiles_balanced(self):
        tiles = tile_map((40, 60), 4, 6)
        counts = np.bincount(tiles.ravel())
        assert counts.min() >= 0.8 * counts.max()

    def test_every_tile_nonempty(self):
        tiles = tile_map((13, 17), 3, 4)
        assert len(np.unique(tiles)) == 12


class TestCandidateMap:
    def test_shape(self):
        cands = candidate_map(4, 6)
        assert cands.shape == (24, 9)

    def test_interior_tile_has_nine_distinct(self):
        cands = candidate_map(4, 6)
        center_tile = 1 * 6 + 2  # (1, 2) interior
        assert len(set(cands[center_tile])) == 9

    def test_interior_candidates_are_3x3_block(self):
        gw = 6
        cands = candidate_map(4, gw)
        t = 2 * gw + 3
        expected = {
            (2 + dy) * gw + (3 + dx) for dy in (-1, 0, 1) for dx in (-1, 0, 1)
        }
        assert set(cands[t]) == expected

    def test_corner_tile_clamps(self):
        cands = candidate_map(4, 6)
        corner = set(cands[0].tolist())
        # Clamped 3x3 around (0,0): only tiles {0, 1, 6, 7}.
        assert corner == {0, 1, 6, 7}

    def test_own_tile_always_candidate(self):
        cands = candidate_map(5, 7)
        for t in range(35):
            assert t in cands[t]

    def test_1x1_grid(self):
        cands = candidate_map(1, 1)
        assert (cands == 0).all()


class TestDynamicCandidates:
    def test_matches_static_on_unmoved_grid(self):
        from repro.core import grid_geometry, initial_centers

        lab = np.zeros((40, 60, 3))
        centers = initial_centers(lab, 24)
        gh, gw, _, _ = grid_geometry((40, 60), 24)
        static = candidate_map(gh, gw)
        dynamic = dynamic_candidate_map(centers, gh, gw, (40, 60))
        # Same candidate sets for *interior* tiles (order may differ:
        # dynamic sorts by distance). Border tiles legitimately differ —
        # static clamps to duplicates, dynamic takes the 9 distinct
        # nearest.
        for gy in range(1, gh - 1):
            for gx in range(1, gw - 1):
                t = gy * gw + gx
                assert set(static[t]) == set(dynamic[t].tolist())

    def test_tracks_moved_centers(self):
        from repro.core import grid_geometry, initial_centers

        lab = np.zeros((40, 60, 3))
        centers = initial_centers(lab, 24)
        gh, gw, _, _ = grid_geometry((40, 60), 24)
        # Teleport cluster 0 to the far corner: it should vanish from tile
        # 0's dynamic candidates.
        centers = centers.copy()
        centers[0, 3] = 59.0
        centers[0, 4] = 39.0
        dynamic = dynamic_candidate_map(centers, gh, gw, (40, 60))
        assert 0 not in dynamic[0]

    def test_first_candidate_is_closest(self):
        from repro.core import initial_centers

        rng = np.random.default_rng(0)
        centers = np.zeros((12, 5))
        centers[:, 3] = rng.uniform(0, 60, 12)
        centers[:, 4] = rng.uniform(0, 40, 12)
        dynamic = dynamic_candidate_map(centers, 3, 4, (40, 60))
        ty = (np.arange(3) + 0.5) * 40 / 3
        tx = (np.arange(4) + 0.5) * 60 / 4
        for t in range(12):
            mid = np.array([tx[t % 4], ty[t // 4]])
            d = np.hypot(centers[:, 3] - mid[0], centers[:, 4] - mid[1])
            assert dynamic[t][0] == np.argmin(d)

    def test_fewer_than_nine_clusters_pads(self):
        centers = np.zeros((4, 5))
        centers[:, 3] = [10, 30, 10, 30]
        centers[:, 4] = [10, 10, 30, 30]
        dyn = dynamic_candidate_map(centers, 2, 2, (40, 40))
        assert dyn.shape == (4, 9)
        assert dyn.max() < 4
