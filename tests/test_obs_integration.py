"""Integration tests: obs wired through engine, cyclesim, and the CLI."""

import json
import time

import numpy as np
import pytest

from repro import AcceleratorConfig, AcceleratorModel, sslic
from repro.cli import main
from repro.core import PhaseTimer
from repro.hw.cyclesim import AcceleratorSim, ClusterUnitSim
from repro.obs import MemorySink, Tracer, read_jsonl
from repro.types import Resolution


class TestEngineTracing:
    @pytest.fixture(scope="class")
    def traced_run(self, small_scene):
        sink = MemorySink()
        with Tracer(sink) as tracer:
            result = sslic(small_scene.image, n_superpixels=24,
                           max_iterations=3, tracer=tracer)
        return result, sink

    def test_span_tree_shape(self, traced_run):
        result, sink = traced_run
        spans = sink.by_type("span")
        by_name = {}
        for ev in spans:
            by_name.setdefault(ev["name"], []).append(ev)
        (root,) = by_name["segmentation"]
        assert root["parent"] is None
        assert root["attrs"]["converged"] == result.converged
        assert len(by_name["sweep"]) == result.iterations
        assert len(by_name["subiteration"]) == result.subiterations
        # Every sweep is a child of the root segmentation span.
        assert {e["parent"] for e in by_name["sweep"]} == {root["id"]}
        # Subiterations nest under sweeps; phases nest under subiterations.
        sweep_ids = {e["id"] for e in by_name["sweep"]}
        assert {e["parent"] for e in by_name["subiteration"]} <= sweep_ids
        sub_ids = {e["id"] for e in by_name["subiteration"]}
        assert {e["parent"] for e in by_name["phase:distance_min"]} <= sub_ids

    def test_sweep_spans_carry_movement_residual(self, traced_run):
        result, sink = traced_run
        sweeps = [e for e in sink.by_type("span") if e["name"] == "sweep"]
        movements = [e["attrs"]["movement"] for e in sweeps]
        assert movements == pytest.approx(result.movement_history)

    def test_pixel_counters(self, traced_run, small_scene):
        result, sink = traced_run
        counters = {e["name"]: e["value"] for e in sink.by_type("counter")}
        h, w = small_scene.image.shape[:2]
        # Each PPA subiteration touches one subset; subsets tile the frame.
        expected = (h * w) // 2 * result.subiterations
        assert counters["engine.pixels_assigned"] == expected
        assert counters["engine.sweeps"] == result.iterations
        assert counters["engine.subiterations"] == result.subiterations

    def test_untraced_run_identical_labels(self, small_scene):
        sink = MemorySink()
        with Tracer(sink) as tracer:
            traced = sslic(small_scene.image, n_superpixels=24,
                           max_iterations=3, tracer=tracer)
        plain = sslic(small_scene.image, n_superpixels=24, max_iterations=3)
        assert np.array_equal(traced.labels, plain.labels)


class TestPhaseTimerSpans:
    def test_phase_spans_tagged_error_on_exception(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        timer = PhaseTimer(tracer=tracer)
        with pytest.raises(RuntimeError):
            with timer.phase("distance_min"):
                raise RuntimeError("midway")
        (ev,) = sink.by_type("span")
        assert ev["name"] == "phase:distance_min"
        assert ev["status"] == "error"
        assert ev["attrs"]["error_type"] == "RuntimeError"
        # Partial time went to the distinct aborted bucket.
        assert timer.aborted() and "distance_min" not in timer.totals

    def test_phase_spans_ok_path(self):
        sink = MemorySink()
        timer = PhaseTimer(tracer=Tracer(sink))
        with timer.phase("center_update"):
            pass
        (ev,) = sink.by_type("span")
        assert ev["status"] == "ok"
        assert timer.totals["center_update"] >= 0.0


class TestCyclesimTracing:
    def test_frame_counters_and_gauges(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        cfg = AcceleratorConfig(
            resolution=Resolution(64, 48), n_superpixels=12, iterations=2
        )
        trace = AcceleratorSim(cfg, tracer=tracer).run_frame()
        tracer.flush()
        counters = {e["name"]: e["value"] for e in sink.by_type("counter")}
        gauges = {e["name"]: e["value"] for e in sink.by_type("gauge")}
        assert counters["cyclesim.scratchpad.fills"] == trace.n_tiles * 2
        assert counters["cyclesim.fsm.fetch_cycles"] == pytest.approx(
            trace.dram_busy_cycles
        )
        assert counters["cyclesim.fsm.compute_cycles"] == pytest.approx(
            trace.compute_cycles
        )
        assert gauges["cyclesim.dram.bytes_per_frame"] > 0
        frame_spans = [e for e in sink.by_type("span")
                       if e["name"] == "cyclesim.frame"]
        assert frame_spans[0]["attrs"]["total_cycles"] == pytest.approx(
            trace.total_cycles
        )
        iter_events = [e for e in sink.by_type("event")
                       if e["name"] == "cyclesim.iteration"]
        assert len(iter_events) == 2

    def test_cluster_unit_events(self):
        sink = MemorySink()
        sim = ClusterUnitSim(tracer=Tracer(sink))
        trace = sim.run(100)
        (ev,) = [e for e in sink.by_type("event")
                 if e["name"] == "cyclesim.cluster_unit"]
        assert ev["attrs"]["n_pixels"] == 100
        assert ev["attrs"]["total_cycles"] == trace.total_cycles

    def test_untraced_sim_unchanged(self):
        cfg = AcceleratorConfig(
            resolution=Resolution(64, 48), n_superpixels=12, iterations=2
        )
        a = AcceleratorSim(cfg).run_frame()
        b = AcceleratorSim(cfg, tracer=Tracer(MemorySink())).run_frame()
        assert a.total_cycles == pytest.approx(b.total_cycles)

    def test_accelerator_report_gauges(self):
        sink = MemorySink()
        model = AcceleratorModel(tracer=Tracer(sink))
        report = model.report()
        model.tracer.flush()
        gauges = {e["name"]: e["value"] for e in sink.by_type("gauge")}
        assert gauges["accelerator.latency_ms"] == pytest.approx(report.latency_ms)
        assert gauges["accelerator.power_mw"] == pytest.approx(report.power_mw)


class TestDisabledOverhead:
    def test_disabled_tracer_under_5_percent(self, small_scene):
        """A disabled Tracer must cost < 5% vs passing no tracer at all."""
        image = small_scene.image
        kwargs = dict(n_superpixels=24, max_iterations=4,
                      convergence_threshold=0.0)

        def run_plain():
            return sslic(image, **kwargs)

        def run_disabled():
            return sslic(image, tracer=Tracer(), **kwargs)

        # Warm both paths, then take best-of-N to shed scheduler noise.
        run_plain(), run_disabled()
        best_plain = min(_timed(run_plain) for _ in range(5))
        best_disabled = min(_timed(run_disabled) for _ in range(5))
        # 5% relative budget plus 2 ms absolute slack for timer jitter on
        # this deliberately small workload.
        assert best_disabled <= best_plain * 1.05 + 2e-3, (
            f"disabled tracer overhead: {best_plain * 1e3:.2f} ms -> "
            f"{best_disabled * 1e3:.2f} ms"
        )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestCliTelemetry:
    def test_segment_trace_and_manifest(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        manifest = tmp_path / "run.json"
        code = main(
            ["segment", "--synthetic", "--seed", "3",
             "--width", "96", "--height", "64",
             "--superpixels", "24", "--iterations", "3",
             "--trace", str(trace), "--manifest", str(manifest)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote trace telemetry" in out
        assert "wrote run manifest" in out

        events = read_jsonl(trace)
        names = {e.get("name") for e in events if e.get("ev") == "span"}
        assert {"segmentation", "sweep", "subiteration"} <= names

        doc = json.loads(manifest.read_text())
        assert doc["command"] == "segment"
        assert doc["seed"] == 3
        assert doc["params"]["n_superpixels"] == 24
        assert "boundary_recall" in doc["metrics"]
        assert "undersegmentation_error" in doc["metrics"]
        assert doc["status"] == "ok"

    def test_stats_command_summarizes(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        main(["segment", "--synthetic", "--width", "96", "--height", "64",
              "--superpixels", "24", "--iterations", "2",
              "--trace", str(trace)])
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "spans" in out
        assert "sweep" in out
        assert "engine.pixels_assigned" in out

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2

    def test_experiment_trace_and_manifest(self, tmp_path, capsys):
        trace = tmp_path / "exp.jsonl"
        manifest = tmp_path / "exp.json"
        code = main(["experiment", "table3", "--trace", str(trace),
                     "--manifest", str(manifest)])
        assert code == 0
        events = read_jsonl(trace)
        (span,) = [e for e in events if e.get("ev") == "span"]
        assert span["name"] == "experiment"
        assert span["attrs"]["experiment"] == "table3"
        assert span["attrs"]["rows"] > 0
        doc = json.loads(manifest.read_text())
        assert doc["command"] == "experiment:table3"
        assert doc["metrics"]["rows"] > 0
