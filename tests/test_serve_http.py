"""End-to-end tests for the serving front end over real sockets.

Everything here talks plain ``http.client`` to a
:class:`~repro.serve.BackgroundServer` on an ephemeral port — the same
harness ``benchmarks/bench_serve.py`` uses.
"""

import asyncio
import base64
import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core.engine import run_segmentation
from repro.core.params import SlicParams
from repro.data import SceneConfig, generate_scene
from repro.serve import BackgroundServer, ServeConfig, ServeExecutor
from repro.serve.server import labels_digest

PARAMS = SlicParams(n_superpixels=32)
SYNTH = {"synthetic": {"seed": 3, "height": 48, "width": 64}}


def request(port, method, path, body=None, timeout=60):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body) if isinstance(body, dict) else body
        conn.request(method, path, payload)
        resp = conn.getresponse()
        raw = resp.read()
        headers = dict(resp.getheaders())
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            data = raw
        return resp.status, data, headers
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(params=PARAMS, max_queue=8, n_workers=1)
    with BackgroundServer(config) as bg:
        yield bg


class TestEndpoints:
    def test_healthz(self, server):
        status, data, _ = request(server.port, "GET", "/healthz")
        assert status == 200
        assert data["status"] == "ok"

    def test_readyz_when_idle(self, server):
        status, data, _ = request(server.port, "GET", "/readyz")
        assert status == 200
        assert data["ready"] is True

    def test_unknown_route_404(self, server):
        status, data, _ = request(server.port, "GET", "/nope")
        assert status == 404

    def test_segment_synthetic_matches_local_run(self, server):
        status, data, headers = request(
            server.port, "POST", "/v1/segment", SYNTH
        )
        assert status == 200
        assert data["ok"] is True
        assert data["degraded"] is False
        assert headers["X-Repro-Degraded"] == "false"
        assert headers["X-Repro-Quality-Rung"] == "full"
        image = generate_scene(
            SceneConfig(height=48, width=64), seed=3
        ).image
        local = run_segmentation(image, PARAMS)
        assert data["labels_sha256"] == labels_digest(local.labels)

    def test_segment_image_b64_roundtrip(self, server):
        image = generate_scene(
            SceneConfig(height=48, width=64), seed=9
        ).image
        body = {
            "image_b64": base64.b64encode(image.tobytes()).decode(),
            "height": 48,
            "width": 64,
            "return_labels": True,
        }
        status, data, _ = request(server.port, "POST", "/v1/segment", body)
        assert status == 200
        labels = np.frombuffer(
            base64.b64decode(data["labels_b64"]), dtype="<i4"
        ).reshape(data["labels_shape"])
        local = run_segmentation(image, PARAMS)
        np.testing.assert_array_equal(labels, local.labels)

    def test_stream_frames_warm_start_and_bit_identity(self, server):
        from repro.core.streaming import StreamSegmenter

        serial = StreamSegmenter(PARAMS)
        image = generate_scene(
            SceneConfig(height=48, width=64), seed=3
        ).image
        for i in range(2):
            status, data, _ = request(
                server.port, "POST", "/v1/streams/bit/frames", SYNTH
            )
            assert status == 200
            assert data["frame_index"] == i
            assert data["warm_started"] is (i > 0)
            baseline = serial.process(image)
            assert data["labels_sha256"] == labels_digest(baseline.labels)
        status, data, _ = request(
            server.port, "DELETE", "/v1/streams/bit"
        )
        assert status == 200
        assert data["closed"] is True

    def test_params_override(self, server):
        body = dict(SYNTH, params={"n_superpixels": 16})
        status, data, _ = request(server.port, "POST", "/v1/segment", body)
        assert status == 200
        assert data["n_superpixels"] <= 16

    def test_metrics_exposition(self, server):
        request(server.port, "POST", "/v1/segment", SYNTH)
        status, text, headers = request(server.port, "GET", "/metrics")
        assert status == 200
        exposition = text.decode()
        assert "repro_serve_requests_total" in exposition
        assert 'endpoint="segment"' in exposition
        assert "repro_serve_latency_seconds_bucket" in exposition
        assert "repro_serve_queue_depth" in exposition


class TestBadRequests:
    def test_non_json_body(self, server):
        status, data, _ = request(
            server.port, "POST", "/v1/segment", "not json"
        )
        assert status == 400

    def test_missing_image(self, server):
        status, data, _ = request(server.port, "POST", "/v1/segment", {})
        assert status == 400
        assert "image_b64" in data["error"]

    def test_wrong_byte_count(self, server):
        body = {
            "image_b64": base64.b64encode(b"abc").decode(),
            "height": 48, "width": 64,
        }
        status, data, _ = request(server.port, "POST", "/v1/segment", body)
        assert status == 400

    def test_unknown_params_override(self, server):
        body = dict(SYNTH, params={"kernel_backend": "reference"})
        status, data, _ = request(server.port, "POST", "/v1/segment", body)
        assert status == 400
        assert "unsupported" in data["error"]

    def test_bad_deadline(self, server):
        body = dict(SYNTH, deadline_ms=-5)
        status, data, _ = request(server.port, "POST", "/v1/segment", body)
        assert status == 400

    @pytest.mark.parametrize("bad", ["abc", "-5"])
    def test_invalid_content_length_is_a_400(self, server, bad):
        # http.client always writes a well-formed Content-Length, so
        # speak raw bytes: a hostile value must earn a clean 400, not a
        # dropped connection from an unhandled handler exception.
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall((
                "POST /v1/segment HTTP/1.1\r\n"
                f"Content-Length: {bad}\r\n"
                "Connection: close\r\n\r\n"
            ).encode())
            raw = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
        assert raw.startswith(b"HTTP/1.1 400")
        assert b"invalid Content-Length" in raw


class TestOverload:
    def test_burst_sheds_429_with_retry_after(self):
        config = ServeConfig(params=PARAMS, max_queue=1, n_workers=1)
        with BackgroundServer(config) as bg:
            results = []

            def one():
                results.append(
                    request(bg.port, "POST", "/v1/segment", SYNTH)
                )

            threads = [threading.Thread(target=one) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            statuses = sorted(status for status, _, _ in results)
            assert 429 in statuses
            assert 200 in statuses
            shed = [r for r in results if r[0] == 429]
            for _, data, headers in shed:
                assert data["reason"] == "queue_full"
                assert int(headers["Retry-After"]) >= 1
            # Shed responses were never queued: bounded outstanding.
            status, text, _ = request(bg.port, "GET", "/metrics")
            assert b"repro_serve_shed_total" in text

    def test_infeasible_deadline_rejected_at_admission(self):
        config = ServeConfig(params=PARAMS, max_queue=4, n_workers=1)
        with BackgroundServer(config) as bg:
            # Seed the service-time tracker with one real frame.
            status, _, _ = request(bg.port, "POST", "/v1/segment", SYNTH)
            assert status == 200
            body = dict(SYNTH, deadline_ms=0.01)
            status, data, headers = request(
                bg.port, "POST", "/v1/segment", body
            )
            assert status == 429
            assert data["reason"] == "deadline_infeasible"
            assert "Retry-After" in headers


class TestCircuitBreakerProbe:
    def test_failed_probe_request_does_not_wedge_the_breaker(self):
        # Regression: a half-open probe claimed by a request that never
        # runs a frame (a 400 here; admission sheds and stream
        # conflicts hit the same path) must release the probe slot —
        # otherwise the breaker sits half-open with the slot marked
        # in-flight forever and every request gets 503 circuit_open
        # with a Retry-After of 0.
        from repro.serve.admission import CircuitBreaker

        config = ServeConfig(
            params=PARAMS, breaker_threshold=1, breaker_reset_s=0.05,
        )
        with BackgroundServer(config) as bg:
            breaker = bg.server.breaker
            breaker.record_failure()  # threshold=1: opens immediately
            assert breaker.state == CircuitBreaker.OPEN
            time.sleep(0.1)  # let the reset window lapse -> half-open
            status, _, _ = request(bg.port, "POST", "/v1/segment", {})
            assert status == 400  # the probe died before any frame ran
            # The slot was released: the next request is the real probe
            # and its success closes the breaker.
            status, data, _ = request(bg.port, "POST", "/v1/segment", SYNTH)
            assert status == 200
            assert breaker.state == CircuitBreaker.CLOSED


class TestDrain:
    def test_drain_completes_in_flight_and_fails_readiness(self):
        config = ServeConfig(
            params=SlicParams(n_superpixels=64),
            max_queue=4, n_workers=1, drain_timeout_s=30.0,
        )
        bg = BackgroundServer(config).start()
        try:
            big = {"synthetic": {"seed": 1, "height": 128, "width": 160}}
            outcome = {}

            def slow_frame():
                outcome["result"] = request(
                    bg.port, "POST", "/v1/segment", big
                )

            worker = threading.Thread(target=slow_frame)
            worker.start()
            # Wait until the frame is actually admitted.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if bg.server.admission.outstanding > 0:
                    break
                time.sleep(0.005)
            assert bg.server.admission.outstanding > 0

            drained = {}

            def drain():
                drained["clean"] = bg.drain()

            drainer = threading.Thread(target=drain)
            drainer.start()
            # While draining: readiness fails, new frames are refused.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and not bg.server.draining:
                time.sleep(0.005)
            assert bg.server.draining
            if bg.server.admission.outstanding > 0:
                status, data, _ = request(bg.port, "GET", "/readyz")
                assert status == 503
                assert data["reason"] == "draining"
                status, data, _ = request(
                    bg.port, "POST", "/v1/segment", SYNTH
                )
                assert status == 503
                assert data["reason"] == "draining"
            worker.join(timeout=60)
            drainer.join(timeout=60)
            # The in-flight frame completed with a real answer.
            assert outcome["result"][0] == 200
            assert drained["clean"] is True
        finally:
            bg.drain()

    def test_drain_with_no_inflight_is_immediate(self):
        config = ServeConfig(params=PARAMS)
        bg = BackgroundServer(config).start()
        assert bg.drain() is True


class TestExecutorDeadline:
    def test_thread_mode_overrun_becomes_frame_timeout(self):
        from repro.parallel.records import FrameTask

        image = generate_scene(
            SceneConfig(height=160, width=200), seed=0
        ).image
        task = FrameTask(
            stream_id="t", frame_index=0, image=image,
            params=SlicParams(n_superpixels=200, max_iterations=10),
        )
        executor = ServeExecutor(mode="thread", n_workers=1)
        try:
            record = asyncio.run(executor.run(task, deadline_s=0.001))
            assert not record.ok
            assert record.error_type == "FrameTimeout"
            assert "deadline" in record.error
        finally:
            executor.close()

    def test_no_deadline_runs_to_completion(self):
        from repro.parallel.records import FrameTask

        image = generate_scene(
            SceneConfig(height=48, width=64), seed=0
        ).image
        task = FrameTask(
            stream_id="t", frame_index=0, image=image, params=PARAMS,
        )
        executor = ServeExecutor(mode="thread", n_workers=1)
        try:
            record = asyncio.run(executor.run(task))
            assert record.ok
            assert record.result.labels.shape == (48, 64)
        finally:
            executor.close()
