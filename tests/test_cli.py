"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import read_ppm, write_ppm


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestSegmentCommand:
    def test_synthetic_segmentation(self, capsys, tmp_path):
        out = tmp_path / "seg.ppm"
        code = main(
            [
                "segment", "--synthetic", "--seed", "1",
                "--width", "96", "--height", "64",
                "--superpixels", "24", "--iterations", "3",
                "--out", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "sslic" in captured
        assert "USE" in captured  # synthetic scenes carry ground truth
        assert out.exists()
        assert read_ppm(out).shape == (64, 96, 3)

    def test_slic_algorithm_choice(self, capsys):
        code = main(
            ["segment", "--synthetic", "--width", "64", "--height", "48",
             "--algorithm", "slic", "--superpixels", "12", "--iterations", "2"]
        )
        assert code == 0
        assert "slic:" in capsys.readouterr().out

    def test_input_file(self, capsys, tmp_path, rgb_image):
        path = tmp_path / "in.ppm"
        write_ppm(path, rgb_image)
        code = main(
            ["segment", "--input", str(path), "--superpixels", "16",
             "--iterations", "2"]
        )
        assert code == 0

    def test_missing_input_errors(self, capsys):
        assert main(["segment"]) == 2


class TestExperimentCommand:
    def test_analytic_experiment(self, capsys):
        assert main(["experiment", "table3"]) == 0
        out = capsys.readouterr().out
        assert "9-9-6" in out

    def test_unknown_experiment(self, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["experiment", "table42"])


class TestReportCommand:
    def test_default_report_is_paper_hd(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "real-time: yes" in out
        assert "mm^2" in out

    def test_custom_configuration(self, capsys):
        assert main(
            ["report", "--width", "640", "--height", "480",
             "--buffer-kb", "1", "--ways", "1-1-1"]
        ) == 0
        out = capsys.readouterr().out
        assert "1-1-1 way" in out
        assert "real-time: no" in out  # iterative unit cannot hit 30 fps
