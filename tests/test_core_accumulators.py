"""Unit tests for the sigma accumulators and center movement."""

import numpy as np
import pytest

from repro.core import SigmaAccumulator, center_movement
from repro.errors import ConfigurationError


class TestSigmaAccumulator:
    def test_mean_computation(self):
        acc = SigmaAccumulator(2)
        vals = np.array([[1.0, 2, 3, 4, 5], [3.0, 4, 5, 6, 7], [10, 10, 10, 10, 10]])
        labels = np.array([0, 0, 1])
        acc.add(vals, labels)
        centers = acc.compute_centers(fallback=np.zeros((2, 5)))
        assert np.allclose(centers[0], [2, 3, 4, 5, 6])
        assert np.allclose(centers[1], [10, 10, 10, 10, 10])

    def test_fallback_for_starved_cluster(self):
        acc = SigmaAccumulator(3)
        acc.add(np.ones((2, 5)), np.array([0, 0]))
        fallback = np.full((3, 5), 7.0)
        centers = acc.compute_centers(fallback)
        assert np.allclose(centers[1], 7.0)
        assert np.allclose(centers[2], 7.0)
        assert np.allclose(centers[0], 1.0)

    def test_incremental_equals_batch(self, rng):
        vals = rng.normal(size=(40, 5))
        labels = rng.integers(0, 4, 40)
        batch = SigmaAccumulator(4)
        batch.add(vals, labels)
        incremental = SigmaAccumulator(4)
        incremental.add(vals[:15], labels[:15])
        incremental.add(vals[15:], labels[15:])
        fb = np.zeros((4, 5))
        assert np.allclose(batch.compute_centers(fb), incremental.compute_centers(fb))

    def test_merge_equals_combined(self, rng):
        vals = rng.normal(size=(30, 5))
        labels = rng.integers(0, 3, 30)
        a = SigmaAccumulator(3)
        b = SigmaAccumulator(3)
        a.add(vals[:10], labels[:10])
        b.add(vals[10:], labels[10:])
        a.merge(b)
        combined = SigmaAccumulator(3)
        combined.add(vals, labels)
        fb = np.zeros((3, 5))
        assert np.allclose(a.compute_centers(fb), combined.compute_centers(fb))

    def test_reset(self):
        acc = SigmaAccumulator(2)
        acc.add(np.ones((3, 5)), np.array([0, 1, 1]))
        acc.reset()
        assert acc.counts.sum() == 0
        assert acc.sums.sum() == 0.0

    def test_empty_add_is_noop(self):
        acc = SigmaAccumulator(2)
        acc.add(np.zeros((0, 5)), np.zeros(0, dtype=int))
        assert acc.counts.sum() == 0

    def test_merge_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SigmaAccumulator(2).merge(SigmaAccumulator(3))

    def test_bad_values_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            SigmaAccumulator(2).add(np.zeros((3, 4)), np.zeros(3, dtype=int))

    def test_label_value_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            SigmaAccumulator(2).add(np.zeros((3, 5)), np.zeros(4, dtype=int))

    def test_rejects_zero_clusters(self):
        with pytest.raises(ConfigurationError):
            SigmaAccumulator(0)


class TestAccumulateDispatch:
    """SigmaAccumulator.accumulate == add on the materialized matrix."""

    def _inputs(self, seed=0, h=9, w=14, k=7):
        rng = np.random.default_rng(seed)
        lab_flat = rng.standard_normal((h * w, 3)) * 25.0
        labels = rng.integers(0, k, size=h * w).astype(np.int32)
        vals = np.empty((h * w, 5))
        vals[:, 0:3] = lab_flat
        vals[:, 3] = np.arange(h * w) % w
        vals[:, 4] = np.arange(h * w) // w
        return lab_flat, labels, vals, w, k

    def test_reference_kernel_matches_add(self):
        from repro.core.accumulators import sigma_accumulate_reference

        lab_flat, labels, vals, w, k = self._inputs()
        acc = SigmaAccumulator(k)
        acc.add(vals, labels)
        sums, counts = sigma_accumulate_reference(
            labels, k, w, lab_flat=lab_flat
        )
        assert np.array_equal(sums, acc.sums)
        assert np.array_equal(counts, acc.counts)

    def test_accumulate_folds_bitwise_like_add(self):
        """Repeated accumulate() across batches equals repeated add() —
        including nonzero starting registers (the S-SLIC sweep carry)."""
        from repro.kernels import get_backend

        lab_flat, labels, vals, w, k = self._inputs(seed=3)
        idx = np.arange(0, len(labels), 2, dtype=np.int64)
        via_add = SigmaAccumulator(k)
        via_add.add(vals, labels)
        via_add.add(vals[idx], labels[: len(idx)])
        via_kernel = SigmaAccumulator(k)
        kernels = get_backend("vectorized")
        via_kernel.accumulate(kernels, labels, w, lab_flat=lab_flat)
        via_kernel.accumulate(
            kernels, labels[: len(idx)], w, idx=idx, lab_flat=lab_flat
        )
        assert np.array_equal(via_kernel.sums, via_add.sums)
        assert np.array_equal(via_kernel.counts, via_add.counts)

    def test_accumulate_fixed_codes_matches_values5_semantics(self):
        from repro.color.hw_convert import LabEncoding
        from repro.kernels import get_backend

        rng = np.random.default_rng(5)
        enc = LabEncoding(8)
        h, w, k = 8, 11, 5
        codes_flat = rng.integers(
            0, enc.code_max + 1, size=(h * w, 3)
        ).astype(np.int64)
        labels = rng.integers(0, k, size=h * w).astype(np.int32)
        vals = np.empty((h * w, 5))
        vals[:, 0:3] = enc.decode(codes_flat)
        vals[:, 3] = np.arange(h * w) % w
        vals[:, 4] = np.arange(h * w) // w
        via_add = SigmaAccumulator(k)
        via_add.add(vals, labels)
        via_kernel = SigmaAccumulator(k)
        via_kernel.accumulate(
            get_backend("vectorized"), labels, w,
            codes_flat=codes_flat, encoding=enc,
        )
        assert np.array_equal(via_kernel.sums, via_add.sums)
        assert np.array_equal(via_kernel.counts, via_add.counts)


class TestCenterMovement:
    def test_zero_for_identical(self):
        c = np.random.default_rng(0).normal(size=(5, 5))
        assert center_movement(c, c) == 0.0

    def test_spatial_only(self):
        old = np.zeros((2, 5))
        new = old.copy()
        new[:, 0:3] = 100.0  # color moves are ignored
        assert center_movement(old, new) == 0.0
        new2 = old.copy()
        new2[0, 3] = 3.0
        new2[0, 4] = 4.0
        assert center_movement(old, new2) == pytest.approx(2.5)  # mean(5, 0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            center_movement(np.zeros((2, 5)), np.zeros((3, 5)))
