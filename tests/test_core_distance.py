"""Unit tests for the Equation 5 distance in float and fixed point."""

import numpy as np
import pytest

from repro.core import FixedDatapath, pairwise_d2_float, spatial_weight
from repro.errors import ConfigurationError


class TestFloatDistance:
    def test_zero_for_identical(self):
        p = np.zeros((1, 1, 3))
        xy = np.zeros((1, 1, 2))
        assert pairwise_d2_float(p, xy, p, xy, 0.5)[0, 0] == 0.0

    def test_color_only(self):
        px = np.array([[[10.0, 0.0, 0.0]]])
        c = np.array([[[13.0, 4.0, 0.0]]])
        xy = np.zeros((1, 1, 2))
        assert pairwise_d2_float(px, xy, c, xy, 1.0)[0, 0] == pytest.approx(25.0)

    def test_spatial_weighting(self):
        px = np.zeros((1, 1, 3))
        pxy = np.array([[[0.0, 0.0]]])
        cxy = np.array([[[3.0, 4.0]]])
        out = pairwise_d2_float(px, pxy, px, cxy, weight=2.0)
        assert out[0, 0] == pytest.approx(50.0)

    def test_matches_equation5_squared(self):
        rng = np.random.default_rng(0)
        px_lab = rng.normal(size=(5, 1, 3))
        px_xy = rng.uniform(0, 20, (5, 1, 2))
        c_lab = rng.normal(size=(5, 9, 3))
        c_xy = rng.uniform(0, 20, (5, 9, 2))
        m, s = 10.0, 13.0
        w = spatial_weight(m, s)
        d2 = pairwise_d2_float(px_lab, px_xy, c_lab, c_xy, w)
        # Explicit Equation 5.
        dc2 = ((px_lab - c_lab) ** 2).sum(-1)
        ds2 = ((px_xy - c_xy) ** 2).sum(-1)
        expected = dc2 + (m / s) ** 2 * ds2
        assert np.allclose(d2, expected)

    def test_weight_validation(self):
        with pytest.raises(ConfigurationError):
            spatial_weight(10.0, 0.0)


class TestFixedDatapathConfig:
    def test_default_8bit(self):
        dp = FixedDatapath()
        assert dp.bits == 8
        assert dp.encoding.bits == 8
        assert dp.effective_distance_shift == 4

    def test_explicit_shift(self):
        assert FixedDatapath(distance_shift=7).effective_distance_shift == 7

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            FixedDatapath(bits=1)

    def test_rejects_negative_shift(self):
        with pytest.raises(ConfigurationError):
            FixedDatapath(distance_shift=-1)

    def test_weight_raw_positive(self):
        dp = FixedDatapath()
        assert dp.weight_raw(10.0, 13.0) >= 1
        # Tiny weights clamp to 1 LSB instead of vanishing.
        assert dp.weight_raw(0.001, 1000.0) == 1


class TestFixedDistance:
    def _args(self, dp, px_lab, px_xy, c_lab, c_xy):
        centers = np.concatenate([c_lab, c_xy], axis=-1).reshape(-1, 5)
        c_codes_all = dp.encode_centers(centers)
        M, C = px_lab.shape[0], c_lab.shape[1]
        enc_px = dp.encoding.encode(px_lab.reshape(-1, 3)).reshape(M, 1, 3)
        return (
            enc_px,
            px_xy.astype(np.int64),
            c_codes_all[:, 0:3].reshape(M, C, 3),
            c_codes_all[:, 3:5].reshape(M, C, 2),
        )

    def test_zero_distance_for_identical(self):
        dp = FixedDatapath()
        lab = np.array([[[50.0, 10.0, -5.0]]])
        xy = np.array([[[7, 9]]])
        px, pxy, cc, cxy = self._args(dp, lab, xy, lab, xy.astype(float))
        d = dp.pairwise_d2(px, pxy, cc, cxy, dp.weight_raw(10.0, 10.0))
        assert d[0, 0] == 0

    def test_argmin_matches_float_for_separated_candidates(self):
        """With well-separated candidates the quantized argmin equals the
        float argmin — the property the paper's Section 6.1 relies on."""
        rng = np.random.default_rng(3)
        dp = FixedDatapath()
        m, s = 10.0, 12.0
        w_f = spatial_weight(m, s)
        w_r = dp.weight_raw(m, s)
        mismatches = 0
        for _ in range(50):
            px_lab = rng.uniform(20, 80, (1, 1, 3))
            px_xy = rng.integers(0, 36, (1, 1, 2))
            c_lab = px_lab + rng.normal(0, 25, (1, 9, 3))
            c_xy = px_xy + rng.uniform(-2 * s, 2 * s, (1, 9, 2))
            d_f = pairwise_d2_float(px_lab, px_xy.astype(float), c_lab, c_xy, w_f)
            enc_px, pxy, cc, cxy = self._args(dp, px_lab, px_xy, c_lab, c_xy)
            d_q = dp.pairwise_d2(enc_px, pxy, cc, cxy, w_r)
            if np.argmin(d_f) != np.argmin(d_q):
                # Tolerate rare near-tie flips only.
                vals = np.sort(d_f.ravel())
                if (vals[1] - vals[0]) / max(vals[0], 1e-9) > 0.1:
                    mismatches += 1
        assert mismatches == 0

    def test_distance_saturates_at_code_max(self):
        dp = FixedDatapath(bits=8)
        px = np.array([[[0, 0, 0]]], dtype=np.int64)
        c = np.array([[[255, 255, 255]]], dtype=np.int64)
        xy = np.zeros((1, 1, 2), dtype=np.int64)
        d = dp.pairwise_d2(px, xy, c, xy, 1)
        assert d[0, 0] == dp.distance_max_code

    def test_unquantized_distance_full_precision(self):
        dp = FixedDatapath(quantize_distance=False)
        px = np.array([[[0, 0, 0]]], dtype=np.int64)
        c = np.array([[[255, 255, 255]]], dtype=np.int64)
        xy = np.zeros((1, 1, 2), dtype=np.int64)
        d = dp.pairwise_d2(px, xy, c, xy, 1)
        assert d[0, 0] == 3 * 255 ** 2

    def test_narrower_bits_coarser_distances(self):
        rng = np.random.default_rng(5)
        lab = rng.uniform(20, 80, (32, 1, 3))
        c_lab = lab + rng.normal(0, 10, (32, 9, 3))
        xy = rng.integers(0, 30, (32, 1, 2))
        c_xy = xy + rng.integers(-10, 10, (32, 9, 2))
        uniq = {}
        for bits in (4, 8):
            dp = FixedDatapath(bits=bits)
            centers = np.concatenate([c_lab, c_xy.astype(float)], axis=-1)
            cc = dp.encode_centers(centers.reshape(-1, 5))
            d = dp.pairwise_d2(
                dp.encoding.encode(lab.reshape(-1, 3)).reshape(32, 1, 3),
                xy.astype(np.int64),
                cc[:, 0:3].reshape(32, 9, 3),
                cc[:, 3:5].reshape(32, 9, 2),
                dp.weight_raw(10.0, 10.0),
            )
            uniq[bits] = len(np.unique(d))
        assert uniq[4] < uniq[8]

    def test_encode_centers_spatial_precision(self):
        dp = FixedDatapath(spatial_frac_bits=2)
        centers = np.array([[50.0, 0.0, 0.0, 10.25, 3.75]])
        raw = dp.encode_centers(centers)
        assert raw[0, 3] == 41  # 10.25 * 4
        assert raw[0, 4] == 15  # 3.75 * 4
