"""Unit tests for the repro.obs instrumentation layer."""

import json
import time

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    RunManifest,
    Tracer,
    format_summary,
    read_jsonl,
    summarize_events,
    summarize_trace,
)
from repro.obs.tracer import NULL_SPAN, NULL_TRACER


class TestSpans:
    def test_nesting_parent_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        spans = {e["name"]: e for e in sink.by_type("span")}
        assert spans["outer"]["parent"] is None
        assert spans["middle"]["parent"] == outer.span_id
        assert spans["inner"]["parent"] == middle.span_id
        assert spans["sibling"]["parent"] == outer.span_id

    def test_emission_order_is_close_order(self):
        # Children close before parents: inner spans appear first.
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        names = [e["name"] for e in sink.by_type("span")]
        assert names == ["b", "a"]

    def test_span_ids_unique(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [e["id"] for e in sink.by_type("span")]
        assert len(set(ids)) == 5

    def test_duration_and_wallclock(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        before = time.time()
        with tracer.span("timed"):
            time.sleep(0.002)
        (ev,) = sink.by_type("span")
        assert ev["dur"] >= 0.002
        assert before <= ev["ts"] <= time.time()

    def test_exception_tags_error_status_and_propagates(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (ev,) = sink.by_type("span")
        assert ev["status"] == "error"
        assert ev["attrs"]["error_type"] == "ValueError"
        assert tracer.current_span is None  # stack unwound

    def test_attributes_via_set(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("s", a=1) as span:
            span.set(b=2.5, c="x")
        (ev,) = sink.by_type("span")
        assert ev["attrs"] == {"a": 1, "b": 2.5, "c": "x"}

    def test_meta_event_emitted_once(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert len(sink.by_type("meta")) == 1
        assert sink.events[0]["ev"] == "meta"

    def test_point_events_carry_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("parent") as span:
            tracer.event("tick", n=1)
        (ev,) = sink.by_type("event")
        assert ev["parent"] == span.span_id
        assert ev["attrs"] == {"n": 1}


class TestDisabledTracer:
    def test_null_sink_disables(self):
        assert Tracer(NullSink()).enabled is False
        assert Tracer().enabled is False
        assert Tracer(MemorySink()).enabled is True

    def test_disabled_span_is_null(self):
        tracer = Tracer()
        with tracer.span("x", k=1) as span:
            assert span is NULL_SPAN
            span.set(anything="goes")  # no-op, no error

    def test_disabled_metrics_record_nothing(self):
        tracer = Tracer()
        tracer.count("c", 5)
        tracer.gauge("g", 1.0)
        tracer.observe("h", 1.0, buckets=(1, 2))
        assert len(tracer.metrics) == 0

    def test_shared_null_tracer_disabled(self):
        assert NULL_TRACER.enabled is False


class TestMetrics:
    def test_counter_arithmetic(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        c.inc(0.5)
        assert c.value == 5.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_buckets(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # <=1: {0.5, 1.0}; <=2: {1.5}; <=4: {3.0}; +inf: {100.0}
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(106.0)
        assert h.mean == pytest.approx(21.2)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")

    def test_registry_snapshot_and_emit(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7.0)
        reg.histogram("h", (1,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1
        sink = MemorySink()
        reg.emit_to(sink)
        assert {e["ev"] for e in sink.events} == {"counter", "gauge", "hist"}


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [
            {"ev": "meta", "schema": 1},
            {"ev": "span", "name": "s", "dur": 0.25, "attrs": {"k": [1, 2]}},
            {"ev": "counter", "name": "c", "value": 3},
        ]
        with JsonlSink(path) as sink:
            for ev in events:
                sink.emit(ev)
        assert read_jsonl(path) == events
        # one compact object per line
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 3
        assert all(json.loads(line) for line in lines)

    def test_numpy_scalars_coerced(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "np.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"ev": "gauge", "value": np.float64(1.5), "n": np.int32(3)})
        (ev,) = read_jsonl(path)
        assert ev["value"] == 1.5 and ev["n"] == 3

    def test_malformed_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev":"meta"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(path)

    def test_tracer_flush_writes_metrics(self, tmp_path):
        path = tmp_path / "m.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            with tracer.span("s"):
                tracer.count("hits", 2)
        events = read_jsonl(path)
        counters = [e for e in events if e["ev"] == "counter"]
        assert counters == [{"ev": "counter", "name": "hits", "value": 2}]

    def test_context_exit_flushes_and_closes(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"ev": "meta"})
        assert sink._fh is None  # handle released
        assert read_jsonl(path) == [{"ev": "meta"}]
        sink.close()  # idempotent

    def test_default_mode_truncates_append_mode_does_not(self, tmp_path):
        path = tmp_path / "a.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"run": 1})
        with JsonlSink(path) as sink:
            sink.emit({"run": 2})
        assert read_jsonl(path) == [{"run": 2}]
        with JsonlSink(path, append=True) as sink:
            sink.emit({"run": 3})
        assert read_jsonl(path) == [{"run": 2}, {"run": 3}]

    def test_non_serializable_attr_degrades_to_repr(self, tmp_path):
        class Opaque:
            def __repr__(self):
                return "<opaque thing>"

        path = tmp_path / "r.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"ev": "span", "attrs": {"obj": Opaque()}})
        (ev,) = read_jsonl(path)
        assert ev["attrs"]["obj"] == "<opaque thing>"

    def test_numpy_array_attr_does_not_kill_the_run(self, tmp_path):
        np = pytest.importorskip("numpy")
        path = tmp_path / "arr.jsonl"
        with JsonlSink(path) as sink:
            # multi-element .item() raises; the sink must fall back to repr
            sink.emit({"ev": "span", "attrs": {"arr": np.zeros(3)}})
        (ev,) = read_jsonl(path)
        assert "0." in ev["attrs"]["arr"]  # repr of the array


class TestManifest:
    def test_schema_fields(self, tmp_path):
        m = RunManifest.start("segment", params={"k": 5}, seed=3, scale="quick")
        m.finish(boundary_recall=0.9)
        doc = RunManifest.read(m.write(tmp_path / "m.json"))
        assert doc["schema"] == 1
        assert doc["command"] == "segment"
        assert doc["params"] == {"k": 5}
        assert doc["seed"] == 3
        assert doc["scale"] == "quick"
        assert doc["status"] == "ok"
        assert doc["metrics"] == {"boundary_recall": 0.9}
        assert doc["duration_s"] >= 0.0
        assert set(doc["versions"]) >= {"python", "repro"}

    def test_error_status(self, tmp_path):
        m = RunManifest.start("x").finish(status="error")
        doc = RunManifest.read(m.write(tmp_path / "e.json"))
        assert doc["status"] == "error"


class TestSummaries:
    def test_summarize_spans_counters(self):
        events = [
            {"ev": "meta", "schema": 1},
            {"ev": "span", "name": "a", "dur": 0.5, "status": "ok"},
            {"ev": "span", "name": "a", "dur": 1.5, "status": "error"},
            {"ev": "counter", "name": "c", "value": 9},
            {"ev": "gauge", "name": "g", "value": 0.25},
            {"ev": "hist", "name": "h", "count": 2, "sum": 3.0},
            {"ev": "mystery"},
        ]
        s = summarize_events(events)
        assert s.schema == 1
        assert s.spans["a"].count == 2
        assert s.spans["a"].errors == 1
        assert s.spans["a"].total_s == pytest.approx(2.0)
        assert s.spans["a"].mean_s == pytest.approx(1.0)
        assert s.spans["a"].max_s == pytest.approx(1.5)
        assert s.counters == {"c": 9}
        assert s.gauges == {"g": 0.25}
        assert s.histograms["h"]["mean"] == pytest.approx(1.5)
        assert s.unknown_events == 1

    def test_format_summary_mentions_everything(self):
        s = summarize_events(
            [
                {"ev": "span", "name": "sweep", "dur": 0.01, "status": "ok"},
                {"ev": "counter", "name": "pixels", "value": 100},
            ]
        )
        text = format_summary(s, title="t")
        assert "sweep" in text and "pixels" in text and "spans" in text

    def test_summarize_trace_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            with tracer.span("root"):
                pass
        s = summarize_trace(path)
        assert s.spans["root"].count == 1
