"""Unit tests for SlicParams validation and derived quantities."""

import numpy as np
import pytest

from repro.core import SlicParams
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        SlicParams()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_superpixels": 0},
            {"compactness": 0.0},
            {"compactness": -1.0},
            {"max_iterations": 0},
            {"max_subiterations": 0},
            {"convergence_threshold": -0.1},
            {"subsample_ratio": 0.0},
            {"subsample_ratio": 1.5},
            {"subsample_ratio": 0.3},  # not 1/n
            {"architecture": "gpu"},
            {"subset_strategy": "spiral"},
            {"center_update_mode": "momentum"},
            {"min_size_factor": 1.0},
            {"min_size_factor": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            SlicParams(**kwargs)

    @pytest.mark.parametrize("ratio,expected", [(1.0, 1), (0.5, 2), (0.25, 4), (0.125, 8)])
    def test_n_subsets(self, ratio, expected):
        assert SlicParams(subsample_ratio=ratio).n_subsets == expected

    def test_grid_interval(self):
        params = SlicParams(n_superpixels=100)
        assert params.grid_interval((100, 100)) == pytest.approx(10.0)

    def test_with_returns_new_instance(self):
        p = SlicParams()
        q = p.with_(compactness=25.0)
        assert q.compactness == 25.0
        assert p.compactness == 10.0

    def test_with_validates(self):
        with pytest.raises(ConfigurationError):
            SlicParams().with_(n_superpixels=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            SlicParams().compactness = 5.0
