"""Golden end-to-end fixtures: exact label hashes + metrics to 6 decimals.

Each case runs the full pipeline on a deterministic synthetic scene and
compares against ``tests/golden/<case>.json``:

* ``labels_sha256`` — SHA-256 of the int32 label map, so *any* change to
  segmentation output (kernel edits, iteration-order changes, datapath
  tweaks) trips the test;
* ``boundary_recall`` / ``undersegmentation_error`` — rounded to six
  decimals, a human-readable signal of whether a hash change is a
  regression or a wash.

When a change is intentional, regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

then review the metric drift in the JSON diff before committing.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import FixedDatapath, SlicParams, run_segmentation
from repro.kernels import available_backends
from repro.metrics import boundary_recall, undersegmentation_error

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Backend axis: every golden case must hash identically under the
#: default backend and the threaded one — one fixture file per case,
#: because the backends are bit-identical by contract.
BACKEND_AXIS = [None, "native-mt"]


@pytest.fixture(params=BACKEND_AXIS, ids=["default", "native-mt"])
def kernel_backend(request):
    if request.param is not None and request.param not in available_backends():
        pytest.skip(f"backend {request.param!r} unavailable")
    return request.param

CASES = {
    "small_ppa_half": dict(
        scene="small",
        params=SlicParams(
            n_superpixels=60, subsample_ratio=0.5, architecture="ppa"
        ),
    ),
    "small_cpa_full": dict(
        scene="small",
        params=SlicParams(
            n_superpixels=60, subsample_ratio=1.0, architecture="cpa"
        ),
    ),
    "small_ppa_checkerboard": dict(
        scene="small",
        params=SlicParams(
            n_superpixels=40,
            subsample_ratio=0.25,
            subset_strategy="checkerboard",
            compactness=25.0,
        ),
    ),
    "hard_ppa_quantized": dict(
        scene="hard",
        params=SlicParams(
            n_superpixels=80,
            subsample_ratio=0.5,
            datapath=FixedDatapath(bits=8),
        ),
    ),
}


def _labels_sha256(labels: np.ndarray) -> str:
    canonical = np.ascontiguousarray(labels.astype(np.int64))
    return hashlib.sha256(canonical.tobytes()).hexdigest()


def _measure(case: dict, scene, kernel_backend=None) -> dict:
    params = case["params"]
    if kernel_backend is not None:
        params = params.with_(kernel_backend=kernel_backend)
    result = run_segmentation(scene.image, params)
    return {
        "labels_sha256": _labels_sha256(result.labels),
        "shape": list(result.labels.shape),
        "n_superpixels": int(result.n_superpixels),
        "iterations": int(result.iterations),
        # tolerance=1: the default (2 px) saturates recall at 1.0 on
        # these small scenes and carries no signal.
        "boundary_recall": round(
            boundary_recall(result.labels, scene.gt_labels, tolerance=1), 6
        ),
        "undersegmentation_error": round(
            undersegmentation_error(result.labels, scene.gt_labels), 6
        ),
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name, kernel_backend, small_scene, hard_scene, update_golden):
    case = CASES[name]
    scene = {"small": small_scene, "hard": hard_scene}[case["scene"]]
    got = _measure(case, scene, kernel_backend)
    path = GOLDEN_DIR / f"{name}.json"

    if update_golden and kernel_backend is None:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2) + "\n")

    if not path.exists():
        pytest.fail(
            f"golden fixture {path} missing — generate it with "
            f"--update-golden and commit the result"
        )
    want = json.loads(path.read_text())

    # Metrics first: if the hash differs, the metric delta says how much
    # the output actually moved.
    for metric in ("boundary_recall", "undersegmentation_error"):
        assert got[metric] == pytest.approx(want[metric], abs=1e-6), (
            f"{name}: {metric} drifted from golden "
            f"{want[metric]} -> {got[metric]}"
        )
    assert got["shape"] == want["shape"]
    assert got["n_superpixels"] == want["n_superpixels"]
    assert got["iterations"] == want["iterations"]
    assert got["labels_sha256"] == want["labels_sha256"], (
        f"{name}: label map changed (metrics within tolerance — "
        f"if intentional, rerun with --update-golden and commit)"
    )


def test_golden_fixtures_are_committed():
    """Every case must have a fixture file in the repo."""
    missing = [n for n in CASES if not (GOLDEN_DIR / f"{n}.json").exists()]
    assert not missing, f"missing golden fixtures: {missing}"
