"""Unit tests for the float64 reference color conversion (Equations 1-4)."""

import numpy as np
import pytest

from repro.color import (
    lab_to_rgb,
    lab_to_xyz,
    linear_rgb_to_xyz,
    rgb_to_lab,
    srgb_gamma_compress,
    srgb_gamma_expand,
    xyz_to_lab,
    xyz_to_linear_rgb,
    D65_WHITE,
)
from repro.errors import ImageError


class TestGamma:
    def test_zero_and_one_fixed(self):
        assert srgb_gamma_expand(0.0) == pytest.approx(0.0)
        assert srgb_gamma_expand(1.0) == pytest.approx(1.0)

    def test_linear_segment(self):
        # Below the 0.04045 threshold: x / 12.92 (Equation 1, first branch).
        assert srgb_gamma_expand(0.02) == pytest.approx(0.02 / 12.92)

    def test_power_segment(self):
        x = 0.5
        assert srgb_gamma_expand(x) == pytest.approx(((x + 0.055) / 1.055) ** 2.4)

    def test_continuous_at_threshold(self):
        lo = srgb_gamma_expand(0.04045 - 1e-9)
        hi = srgb_gamma_expand(0.04045 + 1e-9)
        assert abs(hi - lo) < 1e-5

    def test_monotone(self):
        xs = np.linspace(0, 1, 1001)
        assert (np.diff(srgb_gamma_expand(xs)) > 0).all()

    def test_compress_inverts_expand(self):
        xs = np.linspace(0, 1, 257)
        assert np.allclose(srgb_gamma_compress(srgb_gamma_expand(xs)), xs, atol=1e-9)


class TestXyz:
    def test_white_maps_to_reference_white(self):
        xyz = linear_rgb_to_xyz(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(xyz, D65_WHITE, atol=1e-3)

    def test_black_maps_to_zero(self):
        assert np.allclose(linear_rgb_to_xyz(np.zeros(3)), 0.0)

    def test_matrix_roundtrip(self):
        rgb = np.random.default_rng(0).uniform(0, 1, (16, 3))
        assert np.allclose(xyz_to_linear_rgb(linear_rgb_to_xyz(rgb)), rgb, atol=1e-12)

    def test_green_dominates_luminance(self):
        # Y row of the sRGB matrix: green carries the largest weight.
        y_r = linear_rgb_to_xyz(np.array([1.0, 0, 0]))[1]
        y_g = linear_rgb_to_xyz(np.array([0, 1.0, 0]))[1]
        y_b = linear_rgb_to_xyz(np.array([0, 0, 1.0]))[1]
        assert y_g > y_r > y_b


class TestLab:
    def test_white_is_L100(self):
        lab = xyz_to_lab(D65_WHITE)
        assert lab[0] == pytest.approx(100.0, abs=1e-6)
        assert abs(lab[1]) < 1e-6
        assert abs(lab[2]) < 1e-6

    def test_black_is_L0(self):
        lab = xyz_to_lab(np.zeros(3))
        assert lab[0] == pytest.approx(0.0, abs=1e-9)

    def test_xyz_roundtrip(self):
        xyz = np.random.default_rng(1).uniform(0.01, 1.0, (32, 3))
        assert np.allclose(lab_to_xyz(xyz_to_lab(xyz)), xyz, atol=1e-10)

    def test_gray_axis_has_zero_chroma(self):
        grays = np.linspace(0.05, 1.0, 10)[:, None] * np.ones(3)
        lab = xyz_to_lab(linear_rgb_to_xyz(grays))
        assert np.abs(lab[:, 1:]).max() < 0.5

    def test_l_monotone_in_gray_level(self):
        grays = np.linspace(0, 1, 32)[:, None] * np.ones(3)[None, :]
        lab = xyz_to_lab(linear_rgb_to_xyz(grays))
        assert (np.diff(lab[:, 0]) > 0).all()


class TestFullPipeline:
    def test_uint8_and_float_agree(self, rgb_image):
        lab_u8 = rgb_to_lab(rgb_image)
        lab_f = rgb_to_lab(rgb_image.astype(np.float64) / 255.0)
        assert np.allclose(lab_u8, lab_f)

    def test_lab_ranges(self, rgb_image):
        lab = rgb_to_lab(rgb_image)
        assert lab[..., 0].min() >= -1e-9
        assert lab[..., 0].max() <= 100.0 + 1e-4
        assert np.abs(lab[..., 1:]).max() < 130.0

    def test_roundtrip_through_lab(self, rgb_image):
        rgb = rgb_image.astype(np.float64) / 255.0
        back = lab_to_rgb(rgb_to_lab(rgb))
        assert np.abs(back - rgb).max() < 1e-6

    def test_known_srgb_red(self):
        # sRGB pure red: L*a*b* ~ (53.24, 80.09, 67.20) — standard value.
        lab = rgb_to_lab(np.array([[[255, 0, 0]]], dtype=np.uint8))[0, 0]
        assert lab[0] == pytest.approx(53.24, abs=0.1)
        assert lab[1] == pytest.approx(80.09, abs=0.2)
        assert lab[2] == pytest.approx(67.20, abs=0.2)

    def test_known_srgb_blue(self):
        lab = rgb_to_lab(np.array([[[0, 0, 255]]], dtype=np.uint8))[0, 0]
        assert lab[0] == pytest.approx(32.30, abs=0.1)

    def test_rejects_bad_shape(self):
        with pytest.raises(ImageError):
            rgb_to_lab(np.zeros((4, 4)))

    def test_rejects_out_of_range_float(self):
        with pytest.raises(ImageError):
            rgb_to_lab(np.full((2, 2, 3), 2.0))
