"""Tests for repro.obs.export: Prometheus exposition + TelemetryServer."""

import json
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MemorySink,
    MetricsRegistry,
    SpanRingSink,
    TeeSink,
    TelemetryServer,
    Tracer,
    render_prometheus,
    span_forest,
)
from repro.obs.export import (
    escape_label_value,
    sanitize_label_name,
    sanitize_metric_name,
)
from repro.obs.sinks import NullSink
from repro.obs.tracer import NULL_TRACER


class TestSanitization:
    def test_valid_names_are_identity(self):
        assert sanitize_metric_name("repro_engine_sweeps") == "repro_engine_sweeps"
        assert sanitize_metric_name("a:b_c9") == "a:b_c9"

    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("engine.sweep-rate") == "engine_sweep_rate"

    def test_leading_digit_gets_prefix(self):
        assert sanitize_metric_name("1080p.fps") == "_1080p_fps"

    def test_empty_name(self):
        assert sanitize_metric_name("") == "_"

    def test_idempotent(self):
        once = sanitize_metric_name("a b.c/d")
        assert sanitize_metric_name(once) == once

    def test_label_name_strips_colon_and_reserved_prefix(self):
        assert sanitize_label_name("a:b") == "a_b"
        assert sanitize_label_name("__name__") == "_name__"

    def test_label_value_escaping(self):
        assert escape_label_value('say "hi"\n') == r"say \"hi\"\n"
        assert escape_label_value("back\\slash") == r"back\\slash"


class TestRenderPrometheus:
    def test_golden_exposition(self):
        reg = MetricsRegistry()
        reg.counter("engine.sweeps").inc(3)
        reg.gauge("parallel.workers").set(4)
        h = reg.histogram("engine.sweep_seconds", (0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        h.observe(5.0)
        text = render_prometheus(reg, namespace="repro")
        assert text == (
            "# TYPE repro_engine_sweeps_total counter\n"
            "repro_engine_sweeps_total 3\n"
            "# TYPE repro_parallel_workers gauge\n"
            "repro_parallel_workers 4\n"
            "# TYPE repro_engine_sweep_seconds histogram\n"
            'repro_engine_sweep_seconds_bucket{le="0.01"} 1\n'
            'repro_engine_sweep_seconds_bucket{le="0.1"} 2\n'
            'repro_engine_sweep_seconds_bucket{le="+Inf"} 3\n'
            "repro_engine_sweep_seconds_sum 5.055\n"
            "repro_engine_sweep_seconds_count 3\n"
        )

    def test_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", (1.0, 2.0, 3.0))
        for v in (0.5, 1.5, 1.6, 2.5):
            h.observe(v)
        lines = render_prometheus(reg, namespace="").splitlines()
        buckets = [ln for ln in lines if "_bucket" in ln]
        assert [ln.rsplit(" ", 1)[1] for ln in buckets] == ["1", "3", "4", "4"]

    def test_labeled_series_share_one_type_line(self):
        reg = MetricsRegistry()
        reg.counter("fallbacks", labels={"requested": "shm"}).inc()
        reg.counter("fallbacks", labels={"requested": "auto"}).inc(2)
        text = render_prometheus(reg, namespace="repro")
        assert text.count("# TYPE repro_fallbacks_total counter") == 1
        assert 'repro_fallbacks_total{requested="shm"} 1' in text
        assert 'repro_fallbacks_total{requested="auto"} 2' in text

    def test_label_values_escaped_in_output(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"err": 'boom "x"\n'}).inc()
        text = render_prometheus(reg, namespace="")
        assert r'c_total{err="boom \"x\"\n"} 1' in text

    def test_sanitized_collision_gets_stable_suffix(self):
        reg = MetricsRegistry()
        reg.counter("a.b").inc(1)
        reg.counter("a_b").inc(2)
        text = render_prometheus(reg, namespace="")
        assert "a_b_total 1" in text
        assert "a_b_2_total 2" in text

    def test_unset_gauge_skipped(self):
        reg = MetricsRegistry()
        reg.gauge("never.written")
        reg.counter("c").inc()
        text = render_prometheus(reg, namespace="")
        assert "never" not in text

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_parses_under_prometheus_text_rules(self):
        # Every non-comment line must be <name>{labels} <value> with
        # name/label grammar from the spec.
        import re

        name_re = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
        reg = MetricsRegistry()
        reg.counter("weird name.1", labels={"0bad key": 'v"al'}).inc()
        reg.histogram("engine.sweep_seconds", (0.5,)).observe(1.0)
        reg.gauge("g").set(float("nan"))
        for line in render_prometheus(reg).splitlines():
            if line.startswith("#") or not line:
                continue
            sample, _, value = line.rpartition(" ")
            name = sample.split("{", 1)[0]
            assert name_re.match(name), line
            assert value in ("NaN", "+Inf", "-Inf") or float(value) == pytest.approx(
                float(value)
            )


class TestSinks:
    def test_tee_fans_out(self):
        a, b = MemorySink(), MemorySink()
        tee = TeeSink(a, b)
        tee.emit({"ev": "span", "id": "1"})
        assert a.events == b.events == [{"ev": "span", "id": "1"}]

    def test_tee_raises_after_attempting_all(self):
        class Boom:
            closed = False

            def emit(self, e):
                raise OSError("disk full")

            def flush(self):
                pass

            def close(self):
                self.closed = True

        boom, mem = Boom(), MemorySink()
        tee = TeeSink(boom, mem)
        with pytest.raises(OSError):
            tee.emit({"ev": "x"})
        assert mem.events == [{"ev": "x"}]  # second sink still got it
        tee.close()
        assert boom.closed

    def test_ring_bounded(self):
        ring = SpanRingSink(maxlen=3)
        for i in range(10):
            ring.emit({"ev": "span", "id": i})
        assert [e["id"] for e in ring.events()] == [7, 8, 9]
        assert len(ring) == 3


class TestSpanForest:
    def test_nesting_and_orphans(self):
        events = [
            {"ev": "span", "id": "a", "parent": None, "ts": 1.0},
            {"ev": "span", "id": "b", "parent": "a", "ts": 2.0},
            {"ev": "span", "id": "c", "parent": "b", "ts": 3.0},
            {"ev": "span", "id": "z", "parent": "gone", "ts": 4.0},
            {"ev": "counter", "name": "n", "value": 1},
        ]
        roots = span_forest(events)
        assert [r["id"] for r in roots] == ["a", "z"]
        assert roots[0]["children"][0]["id"] == "b"
        assert roots[0]["children"][0]["children"][0]["id"] == "c"

    def test_max_roots_keeps_most_recent(self):
        events = [
            {"ev": "span", "id": str(i), "parent": None, "ts": float(i)}
            for i in range(5)
        ]
        assert [r["id"] for r in span_forest(events, max_roots=2)] == ["3", "4"]


class TestTelemetryServer:
    def test_rejects_null_tracer(self):
        with pytest.raises(ConfigurationError):
            TelemetryServer(NULL_TRACER)

    def test_enables_disabled_tracer_and_assigns_trace(self):
        tracer = Tracer()  # NullSink -> disabled, no trace id
        server = TelemetryServer(tracer)
        assert tracer.enabled
        assert tracer.trace_id is not None
        assert tracer.sink is server.ring

    def test_tees_existing_sink(self):
        mem = MemorySink()
        tracer = Tracer(mem)
        server = TelemetryServer(tracer)
        with tracer.span("s"):
            pass
        assert any(e["ev"] == "span" for e in mem.events)
        assert any(e["ev"] == "span" for e in server.ring.events())

    def test_http_scrape_roundtrip(self):
        tracer = Tracer(MemorySink())
        with TelemetryServer(tracer, port=0) as server:
            with tracer.span("work", stage="demo"):
                tracer.count("demo.frames", 7)
                tracer.gauge("demo.level", 0.5)
                tracer.observe("demo.seconds", 0.02, buckets=(0.01, 0.1))
            assert server.port != 0  # ephemeral port published

            def get(path):
                req = urllib.request.urlopen(server.url + path, timeout=5)
                return req.status, req.headers.get("Content-Type"), req.read()

            status, ctype, body = get("/metrics")
            assert status == 200
            assert ctype.startswith("text/plain") and "0.0.4" in ctype
            text = body.decode()
            assert "repro_demo_frames_total 7" in text
            assert "repro_demo_level 0.5" in text
            assert 'repro_demo_seconds_bucket{le="+Inf"} 1' in text
            assert text.endswith("\n")

            status, ctype, body = get("/healthz")
            health = json.loads(body)
            assert status == 200 and health["status"] == "ok"
            assert health["trace"] == tracer.trace_id

            status, ctype, body = get("/spans")
            payload = json.loads(body)
            assert payload["trace"] == tracer.trace_id
            names = [root["name"] for root in payload["spans"]]
            assert "work" in names

            with pytest.raises(urllib.error.HTTPError) as err:
                get("/nope")
            assert err.value.code == 404
        server.close()  # idempotent

    def test_scrape_during_mutation(self):
        # A scrape racing metric updates must never error.
        import threading

        tracer = Tracer(MemorySink())
        stop = threading.Event()

        def mutate():
            i = 0
            while not stop.is_set():
                tracer.count("race.counter")
                tracer.observe("race.seconds", i % 5 / 10.0, buckets=(0.1, 0.3))
                i += 1

        with TelemetryServer(tracer) as server:
            thread = threading.Thread(target=mutate, daemon=True)
            thread.start()
            try:
                for _ in range(10):
                    body = urllib.request.urlopen(
                        server.url + "/metrics", timeout=5
                    ).read()
                    assert b"race_counter_total" in body
            finally:
                stop.set()
                thread.join(timeout=5)


class TestTelemetryServerHardening:
    def test_bind_conflict_raises_configuration_error(self):
        first = TelemetryServer(Tracer(MemorySink())).start()
        try:
            second = TelemetryServer(
                Tracer(MemorySink()), port=first.port
            )
            with pytest.raises(ConfigurationError) as err:
                second.start()
            msg = str(err.value)
            assert "cannot bind" in msg
            assert str(first.port) in msg
            # The failed server holds no socket and close() is a no-op.
            second.close()
        finally:
            first.close()

    def test_bind_failure_leaves_server_restartable(self):
        first = TelemetryServer(Tracer(MemorySink())).start()
        blocked = TelemetryServer(Tracer(MemorySink()), port=first.port)
        with pytest.raises(ConfigurationError):
            blocked.start()
        first.close()
        # The port is free now: the same instance can start cleanly.
        blocked.start()
        try:
            body = urllib.request.urlopen(
                blocked.url + "/healthz", timeout=5
            ).read()
            assert b"ok" in body
        finally:
            blocked.close()

    def test_double_close_is_idempotent(self):
        server = TelemetryServer(Tracer(MemorySink())).start()
        server.close()
        server.close()  # second close: no error, no hang

    def test_close_before_start_is_a_noop(self):
        server = TelemetryServer(Tracer(MemorySink()))
        server.close()

    def test_close_releases_the_port_for_rebind(self):
        server = TelemetryServer(Tracer(MemorySink())).start()
        port = server.port
        server.close()
        rebound = TelemetryServer(Tracer(MemorySink()), port=port).start()
        rebound.close()
