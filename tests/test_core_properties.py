"""Property-based tests for core invariants (connectivity, schedules,
candidate maps)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    SubsetSchedule,
    candidate_map,
    connected_components,
    enforce_connectivity,
    tile_map,
)

label_maps = hnp.arrays(
    dtype=np.int32,
    shape=st.tuples(st.integers(4, 14), st.integers(4, 14)),
    elements=st.integers(0, 3),
)


@given(labels=label_maps)
@settings(max_examples=80)
def test_components_are_label_pure(labels):
    comps, n = connected_components(labels)
    assert n >= 1
    for c in np.unique(comps):
        assert len(np.unique(labels[comps == c])) == 1


@given(labels=label_maps)
@settings(max_examples=80)
def test_components_are_connected_refinement(labels):
    """Component boundaries are a superset of label boundaries."""
    comps, _ = connected_components(labels)
    label_change_h = labels[:, 1:] != labels[:, :-1]
    comp_change_h = comps[:, 1:] != comps[:, :-1]
    assert (comp_change_h | ~label_change_h).all()


@given(labels=label_maps, min_size=st.integers(2, 12))
@settings(max_examples=80)
def test_enforce_connectivity_postconditions(labels, min_size):
    out = enforce_connectivity(labels, min_size)
    # Labels come from the original label set.
    assert set(np.unique(out)) <= set(np.unique(labels))
    # Every surviving component reaches min_size, unless it had no
    # neighbor to merge into (single-component map).
    comps, n = connected_components(out)
    sizes = np.bincount(comps.ravel(), minlength=n)
    if n > 1:
        assert sizes.min() >= min(min_size, sizes.max())


@given(labels=label_maps)
@settings(max_examples=60)
def test_enforce_connectivity_idempotent(labels):
    once = enforce_connectivity(labels, 5)
    twice = enforce_connectivity(once, 5)
    assert np.array_equal(once, twice)


@given(
    h=st.integers(6, 40),
    w=st.integers(6, 40),
    n_subsets=st.integers(1, 6),
    strategy=st.sampled_from(["strided", "checkerboard", "rows", "random"]),
)
@settings(max_examples=80)
def test_schedules_always_partition(h, w, n_subsets, strategy):
    if n_subsets > h * w:
        return
    sched = SubsetSchedule((h, w), n_subsets, strategy=strategy)
    seen = np.concatenate([sched.subset(p) for p in range(n_subsets)])
    assert len(seen) == h * w
    assert len(np.unique(seen)) == h * w


@given(gh=st.integers(1, 9), gw=st.integers(1, 9))
@settings(max_examples=60)
def test_candidate_maps_well_formed(gh, gw):
    cands = candidate_map(gh, gw)
    assert cands.shape == (gh * gw, 9)
    assert cands.min() >= 0
    assert cands.max() < gh * gw
    for t in range(gh * gw):
        assert t in cands[t]  # own tile always a candidate


@given(
    h=st.integers(4, 50),
    w=st.integers(4, 50),
    gh=st.integers(1, 8),
    gw=st.integers(1, 8),
)
@settings(max_examples=60)
def test_tile_map_covers_grid(h, w, gh, gw):
    if gh > h or gw > w:
        return
    tiles = tile_map((h, w), gh, gw)
    assert tiles.min() == 0
    assert tiles.max() == gh * gw - 1
    assert len(np.unique(tiles)) == gh * gw
