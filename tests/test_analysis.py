"""Unit tests for the analysis drivers (tables, tradeoff, breakdown, DSE)."""

import numpy as np
import pytest

from repro.analysis import (
    TradeoffCurve,
    TradeoffPoint,
    breakdown_for_image,
    format_value,
    phase_breakdown,
    render_table,
    run_bitwidth_sweep,
    run_tradeoff,
    sweep_buffer_sizes,
    sweep_cluster_configs,
    sweep_cores,
    sweep_datapath_widths,
    sweep_resolutions,
    time_saving_at_quality,
)
from repro.data import SceneConfig, SyntheticDataset
from repro.errors import ConfigurationError


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", None]])
        assert "| a" in out
        assert "2.5" in out
        assert "-" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(0.5) == "0.5"
        assert format_value(1234567.0) == "1.23e+06"
        assert format_value(3) == "3"


def _make_curve(name, times, uses, recalls):
    pts = [
        TradeoffPoint(subiterations=i + 1, sweeps=i + 1, time_ms=t, use=u, recall=r)
        for i, (t, u, r) in enumerate(zip(times, uses, recalls))
    ]
    return TradeoffCurve(name, pts)


class TestTimeSaving:
    def test_faster_candidate_positive(self):
        base = _make_curve("b", [10, 20, 30, 40], [0.4, 0.3, 0.2, 0.1],
                           [0.6, 0.7, 0.8, 0.9])
        cand = _make_curve("c", [5, 10, 15, 20], [0.4, 0.3, 0.2, 0.1],
                           [0.6, 0.7, 0.8, 0.9])
        assert time_saving_at_quality(base, cand, "use") == pytest.approx(0.5)
        assert time_saving_at_quality(base, cand, "recall") == pytest.approx(0.5)

    def test_identical_curves_zero(self):
        base = _make_curve("b", [10, 20, 30], [0.3, 0.2, 0.1], [0.7, 0.8, 0.9])
        assert time_saving_at_quality(base, base, "use") == pytest.approx(0.0)

    def test_candidate_never_reaching_target_nan(self):
        base = _make_curve("b", [10, 20, 30], [0.3, 0.2, 0.1], [0.7, 0.8, 0.9])
        cand = _make_curve("c", [10, 20, 30], [0.9, 0.9, 0.9], [0.1, 0.1, 0.1])
        assert np.isnan(time_saving_at_quality(base, cand, "use"))

    def test_non_monotone_curve_uses_envelope(self):
        base = _make_curve("b", [10, 20, 30, 40], [0.4, 0.15, 0.25, 0.1],
                           [0.5, 0.6, 0.55, 0.9])
        # Should not crash and should return a finite number.
        assert np.isfinite(time_saving_at_quality(base, base, "use"))

    def test_bad_metric_rejected(self):
        base = _make_curve("b", [1], [0.1], [0.9])
        with pytest.raises(ConfigurationError):
            time_saving_at_quality(base, base, "asa")

    def test_bad_axis_rejected(self):
        base = _make_curve("b", [1], [0.1], [0.9])
        with pytest.raises(ConfigurationError):
            time_saving_at_quality(base, base, "use", axis="energy")

    def test_work_axis_uses_sweeps(self):
        base = _make_curve("b", [10, 20, 30, 40], [0.4, 0.3, 0.2, 0.1],
                           [0.6, 0.7, 0.8, 0.9])
        # Candidate: same quality per sweep, but twice as fast per sweep.
        cand = _make_curve("c", [5, 10, 15, 20], [0.4, 0.3, 0.2, 0.1],
                           [0.6, 0.7, 0.8, 0.9])
        assert time_saving_at_quality(base, cand, "use", axis="work") == pytest.approx(0.0)


@pytest.fixture(scope="module")
def tiny_dataset():
    return SyntheticDataset(
        2,
        config=SceneConfig(height=48, width=64, n_regions=6, n_disks=1,
                           texture=3.0, noise=1.5, blur_sigma=1.0),
        seed=3,
    )


class TestRunTradeoff:
    def test_curve_structure(self, tiny_dataset):
        curves = run_tradeoff(tiny_dataset, 12, [1, 2],
                              variants={"SLIC": {"ratio": 1.0},
                                        "S-SLIC (0.5)": {"ratio": 0.5}})
        assert set(curves) == {"SLIC", "S-SLIC (0.5)"}
        for curve in curves.values():
            assert len(curve.points) == 2
            assert (curve.times_ms > 0).all()
            assert (curve.uses >= 0).all()
        assert curves["S-SLIC (0.5)"].points[0].subiterations == 2

    def test_empty_budgets_rejected(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            run_tradeoff(tiny_dataset, 12, [])


class TestBreakdown:
    def test_fractions_sum_to_100(self, tiny_dataset):
        scene = tiny_dataset[0]
        rows = breakdown_for_image(scene.image, n_superpixels=12, iterations=3)
        for algo in ("SLIC", "S-SLIC"):
            assert sum(rows[algo].values()) == pytest.approx(100.0)

    def test_distance_min_dominates(self, tiny_dataset):
        scene = tiny_dataset[0]
        rows = breakdown_for_image(scene.image, n_superpixels=12, iterations=8)
        assert rows["SLIC"]["distance_min"] == max(rows["SLIC"].values())

    def test_phase_breakdown_validates(self):
        with pytest.raises(ConfigurationError):
            phase_breakdown({})
        with pytest.raises(ConfigurationError):
            phase_breakdown({"distance_min": 0.0})


class TestBitwidthSweep:
    def test_points_and_trend(self, tiny_dataset):
        points = run_bitwidth_sweep(tiny_dataset, 12, widths=(4, 8),
                                    iterations=3)
        assert points[0].label == "float64"
        by_bits = {p.bits: p for p in points}
        assert by_bits[4].delta_use >= by_bits[8].delta_use - 1e-9

    def test_empty_widths_rejected(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            run_bitwidth_sweep(tiny_dataset, 12, widths=())


class TestDseSweeps:
    def test_cluster_sweep_five_rows(self):
        assert len(sweep_cluster_configs()) == 5

    def test_buffer_sweep(self):
        reports = sweep_buffer_sizes([1, 4])
        assert reports[0].latency_ms > reports[1].latency_ms

    def test_resolution_sweep(self):
        reports = sweep_resolutions()
        assert set(reports) == {"1920x1080", "1280x768", "640x480"}

    def test_width_sweep_area_monotone(self):
        reports = sweep_datapath_widths([4, 8, 12])
        areas = [r.area_mm2 for r in reports]
        assert areas[0] < areas[1] < areas[2]

    def test_core_sweep_saturates(self):
        reports = sweep_cores([1, 2, 8])
        lat = [r.latency_ms for r in reports]
        assert lat[0] > lat[1] > lat[2]
        # Amdahl: 8 cores nowhere near 8x.
        assert lat[0] / lat[2] < 3.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            sweep_buffer_sizes([0])
        with pytest.raises(ConfigurationError):
            sweep_cores([0])
