"""Unit tests for the segmentation-quality metrics."""

import numpy as np
import pytest

from repro.errors import MetricError
from repro.metrics import (
    achievable_segmentation_accuracy,
    boundary_f_measure,
    boundary_map,
    boundary_precision,
    boundary_recall,
    compactness,
    contingency_table,
    corrected_undersegmentation_error,
    dilate_mask,
    explained_variation,
    perimeter_counts,
    superpixel_size_stats,
    undersegmentation_error,
)


def _halves(h=10, w=10):
    """GT: left/right halves."""
    gt = np.zeros((h, w), dtype=np.int32)
    gt[:, w // 2:] = 1
    return gt


def _quadrants(h=10, w=10):
    labels = np.zeros((h, w), dtype=np.int32)
    labels[: h // 2, w // 2:] = 1
    labels[h // 2:, : w // 2] = 2
    labels[h // 2:, w // 2:] = 3
    return labels


class TestBoundaryMap:
    def test_no_boundaries_in_constant_map(self):
        assert not boundary_map(np.zeros((5, 5), dtype=np.int32)).any()

    def test_vertical_edge_marks_both_sides(self):
        edges = boundary_map(_halves())
        assert edges[:, 4].all()
        assert edges[:, 5].all()
        assert not edges[:, 0].any()

    def test_symmetric_under_label_swap(self):
        gt = _halves()
        assert np.array_equal(boundary_map(gt), boundary_map(1 - gt))


class TestDilate:
    def test_radius_zero_is_copy(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        out = dilate_mask(mask, 0)
        assert np.array_equal(out, mask)
        assert out is not mask

    def test_radius_one_chebyshev(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        out = dilate_mask(mask, 1)
        assert out[1:4, 1:4].all()
        assert out.sum() == 9

    def test_radius_two(self):
        mask = np.zeros((7, 7), dtype=bool)
        mask[3, 3] = True
        assert dilate_mask(mask, 2).sum() == 25

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            dilate_mask(np.zeros((3, 3), dtype=bool), -1)


class TestContingency:
    def test_identity_is_diagonal(self):
        labels = _quadrants()
        table = contingency_table(labels, labels)
        assert np.count_nonzero(table - np.diag(np.diag(table))) == 0
        assert table.sum() == labels.size

    def test_counts_correct(self):
        a = np.array([[0, 0], [1, 1]])
        b = np.array([[0, 1], [0, 1]])
        table = contingency_table(a, b)
        assert np.array_equal(table, [[1, 1], [1, 1]])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            contingency_table(np.zeros((2, 2), int), np.zeros((3, 3), int))


class TestUse:
    def test_perfect_segmentation_zero(self):
        gt = _halves()
        assert undersegmentation_error(gt, gt) == pytest.approx(0.0)

    def test_refinement_still_zero(self):
        """Subdividing GT segments never leaks -> USE stays 0."""
        gt = _halves()
        assert undersegmentation_error(_quadrants(), gt) == pytest.approx(0.0)

    def test_single_superpixel_max_leak(self):
        gt = _halves()
        labels = np.zeros_like(gt)
        # One SP covering both halves is double-counted: USE = 1.
        assert undersegmentation_error(labels, gt) == pytest.approx(1.0)

    def test_straddling_increases_use(self):
        gt = _halves(10, 10)
        shifted = np.zeros_like(gt)
        shifted[:, 7:] = 1  # boundary off by 2
        assert undersegmentation_error(shifted, gt) > 0

    def test_threshold_absorbs_small_overlap(self):
        gt = _halves(10, 10)
        labels = gt.copy()
        labels[0, 5] = 0  # one pixel leak: 1/50 = 2% < 5% threshold
        assert undersegmentation_error(labels, gt, threshold=0.05) == pytest.approx(0.0)
        assert undersegmentation_error(labels, gt, threshold=0.0) > 0

    def test_bad_threshold_rejected(self):
        gt = _halves()
        with pytest.raises(MetricError):
            undersegmentation_error(gt, gt, threshold=1.5)

    def test_corrected_use_zero_for_refinement(self):
        gt = _halves()
        assert corrected_undersegmentation_error(_quadrants(), gt) == pytest.approx(0.0)

    def test_corrected_use_counts_leak(self):
        gt = _halves(10, 10)
        labels = gt.copy()
        labels[:, 5] = 0  # superpixel 0 now straddles: 50 px in gt0, 10 in gt1
        # CUSE charges min(in, out) for each overlapped segment:
        # vs gt0 -> min(50, 10) = 10; vs gt1 -> min(10, 50) = 10.
        expected = (10 + 10) / 100
        assert corrected_undersegmentation_error(labels, gt) == pytest.approx(expected)


class TestBoundaryRecallPrecision:
    def test_perfect_recall(self):
        gt = _halves()
        assert boundary_recall(gt, gt) == pytest.approx(1.0)

    def test_no_boundaries_computed_recall_zero(self):
        gt = _halves()
        flat = np.zeros_like(gt)
        assert boundary_recall(flat, gt, tolerance=1) == 0.0

    def test_gt_without_boundaries_recall_one(self):
        flat = np.zeros((6, 6), dtype=np.int32)
        assert boundary_recall(_quadrants(6, 6), flat) == 1.0

    def test_tolerance_monotone(self):
        gt = _halves(12, 12)
        shifted = np.zeros_like(gt)
        shifted[:, 9:] = 1  # boundary off by 3
        r = [boundary_recall(shifted, gt, tolerance=t) for t in (0, 1, 2, 3)]
        assert r[0] < 1.0
        assert all(a <= b + 1e-12 for a, b in zip(r, r[1:]))
        assert r[3] == pytest.approx(1.0)

    def test_precision_penalizes_extra_boundaries(self):
        gt = _halves(12, 12)
        assert boundary_precision(_quadrants(12, 12), gt, tolerance=0) < 1.0
        assert boundary_recall(_quadrants(12, 12), gt, tolerance=0) == pytest.approx(1.0)

    def test_f_measure_between_recall_and_precision(self):
        gt = _halves(12, 12)
        labels = _quadrants(12, 12)
        r = boundary_recall(labels, gt, tolerance=0)
        p = boundary_precision(labels, gt, tolerance=0)
        f = boundary_f_measure(labels, gt, tolerance=0)
        assert min(r, p) <= f <= max(r, p)

    def test_negative_tolerance_rejected(self):
        gt = _halves()
        with pytest.raises(MetricError):
            boundary_recall(gt, gt, tolerance=-1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricError):
            boundary_recall(np.zeros((3, 3), int), np.zeros((4, 4), int))


class TestRegionMetrics:
    def test_asa_perfect(self):
        gt = _quadrants()
        assert achievable_segmentation_accuracy(gt, gt) == pytest.approx(1.0)

    def test_asa_refinement_perfect(self):
        assert achievable_segmentation_accuracy(
            _quadrants(), _halves()
        ) == pytest.approx(1.0)

    def test_asa_single_superpixel(self):
        gt = _halves()
        labels = np.zeros_like(gt)
        assert achievable_segmentation_accuracy(labels, gt) == pytest.approx(0.5)

    def test_compactness_of_squares_beats_stripes(self):
        squares = _quadrants(12, 12)
        stripes = np.repeat(np.arange(4), 3)[None, :].repeat(12, axis=0)
        assert compactness(squares) > compactness(stripes.astype(np.int32))

    def test_compactness_bounded(self):
        labels = _quadrants(16, 16)
        assert 0.0 < compactness(labels) <= 1.0

    def test_explained_variation_perfect_for_piecewise_constant(self):
        labels = _quadrants(8, 8)
        img = labels[..., None] * np.array([10.0, 20.0, 30.0])
        assert explained_variation(labels, img) == pytest.approx(1.0)

    def test_explained_variation_zero_for_unrelated(self, rng):
        labels = _quadrants(16, 16)
        img = rng.normal(size=(16, 16, 3))
        ev = explained_variation(labels, img)
        assert 0.0 <= ev < 0.5

    def test_explained_variation_constant_image(self):
        labels = _quadrants(8, 8)
        assert explained_variation(labels, np.ones((8, 8, 3))) == 1.0

    def test_perimeter_counts_square(self):
        labels = np.zeros((4, 4), dtype=np.int32)
        # Single 4x4 square: perimeter = 16 border units.
        assert perimeter_counts(labels)[0] == 16

    def test_size_stats(self):
        stats = superpixel_size_stats(_quadrants(10, 10))
        assert stats["n_superpixels"] == 4
        assert stats["min_area"] == 25
        assert stats["max_area"] == 25
        assert stats["mean_area"] == pytest.approx(25.0)
