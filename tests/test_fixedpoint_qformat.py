"""Unit tests for repro.fixedpoint.qformat."""

import numpy as np
import pytest

from repro.errors import FixedPointError
from repro.fixedpoint import QFormat, RoundingMode


class TestQFormatConstruction:
    def test_basic_fields(self):
        q = QFormat(8, 4)
        assert q.total_bits == 8
        assert q.frac_bits == 4
        assert q.signed

    def test_int_bits_signed(self):
        assert QFormat(8, 4, signed=True).int_bits == 3

    def test_int_bits_unsigned(self):
        assert QFormat(8, 4, signed=False).int_bits == 4

    def test_rejects_tiny_width(self):
        with pytest.raises(FixedPointError):
            QFormat(1, 0)

    def test_rejects_huge_width(self):
        with pytest.raises(FixedPointError):
            QFormat(65, 0)

    def test_rejects_negative_frac(self):
        with pytest.raises(FixedPointError):
            QFormat(8, -1)

    def test_str_representation(self):
        assert str(QFormat(8, 4)) == "Qs3.4"
        assert str(QFormat(8, 4, signed=False)) == "Qu4.4"


class TestRanges:
    def test_signed_range(self):
        q = QFormat(8, 0)
        assert q.raw_min == -128
        assert q.raw_max == 127
        assert q.min_value == -128.0
        assert q.max_value == 127.0

    def test_unsigned_range(self):
        q = QFormat(8, 0, signed=False)
        assert q.raw_min == 0
        assert q.raw_max == 255

    def test_scale(self):
        assert QFormat(8, 4).scale == pytest.approx(1 / 16)
        assert QFormat(8, 4).resolution == pytest.approx(1 / 16)

    def test_fractional_range(self):
        q = QFormat(8, 7, signed=True)  # ~[-1, 1)
        assert q.max_value == pytest.approx(127 / 128)
        assert q.min_value == pytest.approx(-1.0)


class TestQuantization:
    def test_exact_values_roundtrip(self):
        q = QFormat(8, 4)
        assert q.quantize(1.25) == 1.25
        assert q.quantize(-2.5) == -2.5

    def test_nearest_rounding(self):
        q = QFormat(8, 0)
        assert q.quantize(1.4) == 1.0
        assert q.quantize(1.6) == 2.0

    def test_half_away_from_zero(self):
        q = QFormat(8, 0)
        assert q.quantize(0.5) == 1.0
        assert q.quantize(-0.5) == -1.0

    def test_truncate_rounding(self):
        q = QFormat(8, 0)
        assert q.quantize(1.9, rounding=RoundingMode.TRUNCATE) == 1.0
        assert q.quantize(-1.9, rounding=RoundingMode.TRUNCATE) == -1.0

    def test_floor_rounding(self):
        q = QFormat(8, 0)
        assert q.quantize(1.9, rounding=RoundingMode.FLOOR) == 1.0
        assert q.quantize(-1.1, rounding=RoundingMode.FLOOR) == -2.0

    def test_unknown_rounding_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat(8, 0).to_raw(1.0, rounding="stochastic")

    def test_saturation_positive(self):
        q = QFormat(8, 0)
        assert q.quantize(1000.0) == 127.0

    def test_saturation_negative(self):
        q = QFormat(8, 0)
        assert q.quantize(-1000.0) == -128.0

    def test_unsigned_clamps_negative(self):
        q = QFormat(8, 0, signed=False)
        assert q.quantize(-5.0) == 0.0

    def test_nan_maps_to_zero(self):
        q = QFormat(8, 4)
        assert q.quantize(float("nan")) == 0.0

    def test_array_quantize_shape(self):
        q = QFormat(8, 4)
        arr = np.linspace(-10, 10, 37)
        out = q.quantize(arr)
        assert out.shape == arr.shape

    def test_quantization_error_bounded(self):
        q = QFormat(10, 5)
        xs = np.linspace(q.min_value, q.max_value, 1001)
        err = np.abs(q.quantize(xs) - xs)
        assert err.max() <= q.scale / 2 + 1e-12

    def test_to_raw_from_raw_identity(self):
        q = QFormat(12, 6)
        raw = np.arange(q.raw_min, q.raw_max + 1, 17)
        assert np.array_equal(q.to_raw(q.from_raw(raw)), raw)

    def test_representable(self):
        q = QFormat(8, 4)
        assert q.representable(1.25)
        assert not q.representable(1.26)
        assert not q.representable(1000.0)


class TestForRange:
    def test_unit_range(self):
        q = QFormat.for_unit_range(8)
        assert not q.signed
        assert q.frac_bits == 8

    def test_unit_range_signed(self):
        q = QFormat.for_unit_range(8, signed=True)
        assert q.signed
        assert q.frac_bits == 7

    def test_covers_requested_range(self):
        q = QFormat.for_range(8, 0.0, 100.0)
        assert q.max_value >= 100.0
        assert q.min_value <= 0.0

    def test_signed_inferred_from_negative_lo(self):
        q = QFormat.for_range(8, -5.0, 5.0)
        assert q.signed

    def test_negative_range_needs_signed(self):
        with pytest.raises(FixedPointError):
            QFormat.for_range(8, -5.0, 5.0, signed=False)

    def test_empty_range_rejected(self):
        with pytest.raises(FixedPointError):
            QFormat.for_range(8, 5.0, 1.0)

    def test_maximizes_fraction(self):
        # Range [0, 1] at 8 bits: 7 fraction bits leave max 2.0 > 1 covered;
        # the chooser must not waste more integer bits than needed.
        q = QFormat.for_range(8, 0.0, 1.0)
        assert q.max_value >= 1.0
        assert q.frac_bits >= 6
