"""Unit tests for connected components and connectivity enforcement."""

import numpy as np
import pytest

from repro.core import connected_components, enforce_connectivity
from repro.core.connectivity import ConnectivityState
from repro.kernels import available_backends

BACKENDS = available_backends()


class TestConnectedComponents:
    def test_constant_map_single_component(self):
        comps, n = connected_components(np.zeros((6, 6), dtype=np.int32))
        assert n == 1
        assert (comps == 0).all()

    def test_two_halves(self):
        labels = np.zeros((6, 6), dtype=np.int32)
        labels[:, 3:] = 1
        comps, n = connected_components(labels)
        assert n == 2

    def test_same_label_disjoint_pieces_split(self):
        labels = np.zeros((5, 5), dtype=np.int32)
        labels[:, 2] = 1  # wall splits label 0 into two components
        comps, n = connected_components(labels)
        assert n == 3

    def test_diagonal_not_connected(self):
        # 4-connectivity: diagonal touching pieces are separate.
        labels = np.array([[1, 0], [0, 1]], dtype=np.int32)
        comps, n = connected_components(labels)
        assert n == 4

    def test_snake_is_one_component(self):
        labels = np.ones((5, 7), dtype=np.int32)
        labels[1, :-1] = 0
        labels[3, 1:] = 0
        comps, n = connected_components(labels)
        # Label 0: two rows joined? They don't touch -> 2 comps of 0, and
        # label 1 is split into 3 bands connected at the edges (column -1
        # of row 1 and column 0 of row 3 remain 1, linking bands).
        sizes = np.bincount(comps.ravel())
        assert sizes.sum() == 35
        # Components are label-pure:
        for c in range(n):
            assert len(np.unique(labels[comps == c])) == 1

    def test_component_ids_dense(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, (12, 12)).astype(np.int32)
        comps, n = connected_components(labels)
        assert sorted(np.unique(comps)) == list(range(n))


class TestEnforceConnectivity:
    def test_min_size_one_is_identity(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 4, (10, 10)).astype(np.int32)
        out = enforce_connectivity(labels, 1)
        assert np.array_equal(out, labels)

    def test_absorbs_single_stray_pixel(self):
        labels = np.zeros((8, 8), dtype=np.int32)
        labels[4, 4] = 1  # lone stray
        out = enforce_connectivity(labels, 4)
        assert (out == 0).all()

    def test_keeps_large_components(self):
        labels = np.zeros((8, 8), dtype=np.int32)
        labels[:, 4:] = 1
        out = enforce_connectivity(labels, 4)
        assert np.array_equal(out, labels)

    def test_merges_into_longest_border_neighbor(self):
        labels = np.zeros((8, 12), dtype=np.int32)
        labels[:, 6:] = 1
        # 2x2 stray of label 2 sitting mostly next to label 1.
        labels[3:5, 6:8] = 2
        out = enforce_connectivity(labels, 6)
        assert 2 not in out
        assert (out[3:5, 6:8] == 1).all()

    def test_all_fragments_reach_min_size(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 6, (24, 24)).astype(np.int32)
        out = enforce_connectivity(labels, 10)
        comps, n = connected_components(out)
        sizes = np.bincount(comps.ravel(), minlength=n)
        assert sizes.min() >= 10 or n == 1

    def test_partition_preserved_as_labels_subset(self):
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 5, (16, 16)).astype(np.int32)
        out = enforce_connectivity(labels, 6)
        assert set(np.unique(out)) <= set(np.unique(labels))

    def test_chain_of_small_fragments(self):
        # Three small fragments in a row must all end up in the big region.
        labels = np.zeros((6, 20), dtype=np.int32)
        labels[2:4, 8:10] = 1
        labels[2:4, 10:12] = 2
        labels[2:4, 12:14] = 3
        out = enforce_connectivity(labels, 8)
        assert len(np.unique(out)) == 1

    def test_whole_image_smaller_than_min_size(self):
        labels = np.zeros((3, 3), dtype=np.int32)
        out = enforce_connectivity(labels, 100)
        assert np.array_equal(out, labels)

    def test_input_not_mutated(self):
        labels = np.zeros((8, 8), dtype=np.int32)
        labels[4, 4] = 1
        before = labels.copy()
        enforce_connectivity(labels, 4)
        assert np.array_equal(labels, before)


def _ring(h=12, w=12):
    """A thick ring of label 1 (48 px) enclosing a 0-island (16 px)."""
    labels = np.zeros((h, w), dtype=np.int32)
    labels[2:-2, 2:-2] = 1
    labels[4:-4, 4:-4] = 0
    return labels


@pytest.mark.parametrize("backend", BACKENDS)
class TestEdgeCases:
    """Shapes that have historically broken union-find renumbering."""

    def test_ring_splits_enclosed_island(self, backend):
        labels = _ring()
        comps, n = connected_components(labels, backend=backend)
        # Outside 0, the ring of 1, and the enclosed 0 island: 3 comps.
        assert n == 3
        assert comps[0, 0] != comps[6, 6]
        assert labels[comps == comps[6, 6]].sum() == 0

    def test_thin_ring_and_island_collapse(self, backend):
        # Ring (24 px) below min_size merges into the outside (longest
        # border), then the island (25 px) has only the merged ring as a
        # neighbor — chaining must land everything on label 0.
        labels = np.zeros((11, 11), dtype=np.int32)
        labels[2:9, 2:9] = 1
        labels[3:8, 3:8] = 0
        out = enforce_connectivity(labels, 30, backend=backend)
        assert (out == 0).all()

    def test_enclosed_island_below_min_size(self, backend):
        # The island (16 px) is too small; its only neighbor is the ring,
        # so it must take the ring's label, not the outside's.
        labels = _ring()
        out = enforce_connectivity(labels, 20, backend=backend)
        comps, n = connected_components(out, backend=backend)
        assert n == 2
        assert (out[4:-4, 4:-4] == 1).all()
        assert (out[0] == 0).all()

    def test_min_size_equals_image_area(self, backend):
        # Nothing can satisfy min_size == area except a constant map;
        # everything collapses into one surviving component.
        labels = np.zeros((6, 8), dtype=np.int32)
        labels[:, 4:] = 1
        out = enforce_connectivity(labels, 48, backend=backend)
        assert len(np.unique(out)) == 1

    def test_min_size_beyond_image_area_constant_map(self, backend):
        # A single component can never be merged anywhere — it must
        # survive unchanged even when smaller than min_size.
        labels = np.full((5, 5), 7, dtype=np.int32)
        out = enforce_connectivity(labels, 10_000, backend=backend)
        assert np.array_equal(out, labels)

    def test_single_row_and_column(self, backend):
        row = np.array([[0, 0, 1, 1, 0]], dtype=np.int32)
        comps, n = connected_components(row, backend=backend)
        assert n == 3
        col = row.T.copy()
        comps_t, n_t = connected_components(col, backend=backend)
        assert n_t == 3
        assert np.array_equal(comps_t, comps.T)


@pytest.mark.parametrize("backend", BACKENDS)
class TestNoOpSemantics:
    """Every early return must equal what the main path would produce.

    Components are label-pure, so an identity merge relabels each pixel
    with its own label: whenever nothing is below ``min_size`` the
    output IS the input. The shortcuts (``min_size <= 1``, uniform map,
    single component) exist for speed and must be observably
    indistinguishable from the main path — same values, same
    fresh-buffer ownership.
    """

    def test_min_size_leq_one_identity_fresh_buffer(self, backend):
        rng = np.random.default_rng(11)
        labels = rng.integers(0, 5, (9, 9)).astype(np.int32)
        for min_size in (0, 1):
            out = enforce_connectivity(labels, min_size, backend=backend)
            assert np.array_equal(out, labels)
            assert out is not labels
            out[0, 0] = 99  # caller owns the buffer
            assert labels[0, 0] != 99

    def test_uniform_map_identity(self, backend):
        labels = np.full((6, 7), 3, dtype=np.int32)
        out = enforce_connectivity(labels, 4, backend=backend)
        assert np.array_equal(out, labels)
        assert out is not labels

    def test_single_pixel_image(self, backend):
        labels = np.array([[5]], dtype=np.int32)
        out = enforce_connectivity(labels, 10, backend=backend)
        assert np.array_equal(out, labels)
        comps, n = connected_components(labels, backend=backend)
        assert n == 1 and comps[0, 0] == 0

    def test_single_row_merge_ties_to_lowest_component(self, backend):
        # One-row maps exercise width-only runs (no vertical unions);
        # the lone 1 borders components 0 and 2 equally — the tie must
        # go to the lowest component id (0), matching the reference walk.
        labels = np.array([[0, 0, 0, 1, 2, 2, 2, 2]], dtype=np.int32)
        out = enforce_connectivity(labels, 3, backend=backend)
        assert np.array_equal(
            out, np.array([[0, 0, 0, 0, 2, 2, 2, 2]], dtype=np.int32)
        )

    def test_main_path_identity_merge_equals_input(self, backend):
        # All components >= min_size: the main path's merge is an
        # identity relabel, indistinguishable from the shortcuts.
        labels = np.zeros((8, 8), dtype=np.int32)
        labels[:, 4:] = 1
        out = enforce_connectivity(labels, 4, backend=backend)
        assert np.array_equal(out, labels)


def _frames(h=64, w=48, patch=None):
    """A base label map and a copy with a small patch of motion."""
    rng = np.random.default_rng(21)
    base = rng.integers(0, 6, (h, w)).astype(np.int32)
    warm = base.copy()
    if patch is not None:
        y, x = patch
        warm[y:y + 4, x:x + 4] = 5
    return base, warm


@pytest.mark.parametrize("backend", BACKENDS)
class TestConnectivityState:
    """Incremental video connectivity: the state is a pure cache —
    dropping it, evicting it, or feeding it any frame sequence never
    changes the output, only ``tiles_resolved``."""

    def test_warm_output_bit_identical_to_stateless(self, backend):
        base, warm = _frames(patch=(30, 20))
        state = ConnectivityState(band_rows=16)
        cold = enforce_connectivity(base, 8, backend=backend, state=state)
        hot = enforce_connectivity(warm, 8, backend=backend, state=state)
        assert np.array_equal(
            cold, enforce_connectivity(base, 8, backend=backend)
        )
        assert np.array_equal(
            hot, enforce_connectivity(warm, 8, backend=backend)
        )

    def test_warm_frame_resolves_strictly_fewer_tiles(self, backend):
        # The ISSUE's acceptance counter: a warm frame with small motion
        # must re-resolve strictly fewer bands than the cold frame.
        base, warm = _frames(patch=(30, 20))
        state = ConnectivityState(band_rows=16)
        enforce_connectivity(base, 8, backend=backend, state=state)
        cold_tiles = state.tiles_resolved
        assert cold_tiles == state.tiles_total  # cold = everything dirty
        enforce_connectivity(warm, 8, backend=backend, state=state)
        assert state.tiles_resolved < cold_tiles
        assert state.tiles_resolved >= 1

    def test_identical_frame_shortcut_zero_tiles(self, backend):
        base, _ = _frames()
        state = ConnectivityState(band_rows=16)
        first = enforce_connectivity(base, 8, backend=backend, state=state)
        second = enforce_connectivity(base, 8, backend=backend, state=state)
        assert state.tiles_resolved == 0
        assert np.array_equal(first, second)
        assert first is not second  # still a caller-owned buffer

    def test_min_size_change_invalidates_shortcut(self, backend):
        # Same labels, different min_size: the cached output is for the
        # old policy and must not be replayed.
        base = np.zeros((32, 32), dtype=np.int32)
        base[10:12, 10:12] = 1  # 4-px fragment
        state = ConnectivityState(band_rows=16)
        kept = enforce_connectivity(base, 2, backend=backend, state=state)
        assert 1 in kept
        merged = enforce_connectivity(base, 8, backend=backend, state=state)
        assert 1 not in merged
        assert np.array_equal(
            merged, enforce_connectivity(base, 8, backend=backend)
        )

    def test_failed_merge_retry_does_not_replay_stale_output(self, backend):
        # If enforce_connectivity dies between state.components() and
        # record_output() (kernel error mid-merge) and the frame is
        # retried with the same state, the retry sees zero dirty tiles —
        # the identical-frame shortcut must NOT hand back the previous
        # frame's output.
        base, warm = _frames(patch=(30, 20))
        state = ConnectivityState(band_rows=16)
        enforce_connectivity(base, 8, backend=backend, state=state)
        # Simulate the failure: components() runs for the new frame, but
        # the merge never completes, so record_output() is never called.
        comps, n_comps, shortcut = state.components(warm, 8, backend=backend)
        assert shortcut is None
        retry = enforce_connectivity(warm, 8, backend=backend, state=state)
        assert state.tiles_resolved == 0  # the dangerous path: all clean
        assert np.array_equal(
            retry, enforce_connectivity(warm, 8, backend=backend)
        )

    def test_shape_change_resets_cleanly(self, backend):
        big, _ = _frames(h=64, w=48)
        small = big[:32, :24].copy()
        state = ConnectivityState(band_rows=16)
        enforce_connectivity(big, 8, backend=backend, state=state)
        out = enforce_connectivity(small, 8, backend=backend, state=state)
        assert state.tiles_resolved == state.tiles_total
        assert np.array_equal(
            out, enforce_connectivity(small, 8, backend=backend)
        )

    def test_min_size_leq_one_leaves_cache_consistent(self, backend):
        base, warm = _frames(patch=(10, 10))
        state = ConnectivityState(band_rows=16)
        enforce_connectivity(base, 8, backend=backend, state=state)
        # A min_size<=1 call is a pure no-op: counters zero, caches
        # untouched, and the next real call still resolves correctly.
        out = enforce_connectivity(warm, 1, backend=backend, state=state)
        assert np.array_equal(out, warm)
        assert state.tiles_resolved == 0
        after = enforce_connectivity(warm, 8, backend=backend, state=state)
        assert np.array_equal(
            after, enforce_connectivity(warm, 8, backend=backend)
        )

    def test_long_sequence_matches_stateless(self, backend):
        # Arbitrary mixed sequence (moving patch, repeats, big jumps):
        # every stateful output equals the stateless one.
        rng = np.random.default_rng(33)
        state = ConnectivityState(band_rows=8)
        frame = rng.integers(0, 5, (40, 32)).astype(np.int32)
        for step in range(6):
            if step % 3 == 2:
                frame = rng.integers(0, 5, (40, 32)).astype(np.int32)
            elif step % 3 == 1:
                frame = frame.copy()
                frame[12:18, 8:14] = step % 5
            stateful = enforce_connectivity(
                frame, 6, backend=backend, state=state
            )
            stateless = enforce_connectivity(frame, 6, backend=backend)
            assert np.array_equal(stateful, stateless)
