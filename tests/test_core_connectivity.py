"""Unit tests for connected components and connectivity enforcement."""

import numpy as np
import pytest

from repro.core import connected_components, enforce_connectivity


class TestConnectedComponents:
    def test_constant_map_single_component(self):
        comps, n = connected_components(np.zeros((6, 6), dtype=np.int32))
        assert n == 1
        assert (comps == 0).all()

    def test_two_halves(self):
        labels = np.zeros((6, 6), dtype=np.int32)
        labels[:, 3:] = 1
        comps, n = connected_components(labels)
        assert n == 2

    def test_same_label_disjoint_pieces_split(self):
        labels = np.zeros((5, 5), dtype=np.int32)
        labels[:, 2] = 1  # wall splits label 0 into two components
        comps, n = connected_components(labels)
        assert n == 3

    def test_diagonal_not_connected(self):
        # 4-connectivity: diagonal touching pieces are separate.
        labels = np.array([[1, 0], [0, 1]], dtype=np.int32)
        comps, n = connected_components(labels)
        assert n == 4

    def test_snake_is_one_component(self):
        labels = np.ones((5, 7), dtype=np.int32)
        labels[1, :-1] = 0
        labels[3, 1:] = 0
        comps, n = connected_components(labels)
        # Label 0: two rows joined? They don't touch -> 2 comps of 0, and
        # label 1 is split into 3 bands connected at the edges (column -1
        # of row 1 and column 0 of row 3 remain 1, linking bands).
        sizes = np.bincount(comps.ravel())
        assert sizes.sum() == 35
        # Components are label-pure:
        for c in range(n):
            assert len(np.unique(labels[comps == c])) == 1

    def test_component_ids_dense(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, (12, 12)).astype(np.int32)
        comps, n = connected_components(labels)
        assert sorted(np.unique(comps)) == list(range(n))


class TestEnforceConnectivity:
    def test_min_size_one_is_identity(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 4, (10, 10)).astype(np.int32)
        out = enforce_connectivity(labels, 1)
        assert np.array_equal(out, labels)

    def test_absorbs_single_stray_pixel(self):
        labels = np.zeros((8, 8), dtype=np.int32)
        labels[4, 4] = 1  # lone stray
        out = enforce_connectivity(labels, 4)
        assert (out == 0).all()

    def test_keeps_large_components(self):
        labels = np.zeros((8, 8), dtype=np.int32)
        labels[:, 4:] = 1
        out = enforce_connectivity(labels, 4)
        assert np.array_equal(out, labels)

    def test_merges_into_longest_border_neighbor(self):
        labels = np.zeros((8, 12), dtype=np.int32)
        labels[:, 6:] = 1
        # 2x2 stray of label 2 sitting mostly next to label 1.
        labels[3:5, 6:8] = 2
        out = enforce_connectivity(labels, 6)
        assert 2 not in out
        assert (out[3:5, 6:8] == 1).all()

    def test_all_fragments_reach_min_size(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 6, (24, 24)).astype(np.int32)
        out = enforce_connectivity(labels, 10)
        comps, n = connected_components(out)
        sizes = np.bincount(comps.ravel(), minlength=n)
        assert sizes.min() >= 10 or n == 1

    def test_partition_preserved_as_labels_subset(self):
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 5, (16, 16)).astype(np.int32)
        out = enforce_connectivity(labels, 6)
        assert set(np.unique(out)) <= set(np.unique(labels))

    def test_chain_of_small_fragments(self):
        # Three small fragments in a row must all end up in the big region.
        labels = np.zeros((6, 20), dtype=np.int32)
        labels[2:4, 8:10] = 1
        labels[2:4, 10:12] = 2
        labels[2:4, 12:14] = 3
        out = enforce_connectivity(labels, 8)
        assert len(np.unique(out)) == 1

    def test_whole_image_smaller_than_min_size(self):
        labels = np.zeros((3, 3), dtype=np.int32)
        out = enforce_connectivity(labels, 100)
        assert np.array_equal(out, labels)

    def test_input_not_mutated(self):
        labels = np.zeros((8, 8), dtype=np.int32)
        labels[4, 4] = 1
        before = labels.copy()
        enforce_connectivity(labels, 4)
        assert np.array_equal(labels, before)
