"""Unit tests for the HLS scheduling model (Table 3 latencies)."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import ClusterWays, TABLE3_WAYS, schedule_cluster_unit


class TestClusterWays:
    def test_label(self):
        assert ClusterWays(9, 9, 6).label == "9-9-6 way"
        assert ClusterWays(1, 1, 1).label == "1-1-1 way"

    @pytest.mark.parametrize("bad", [{"distance": 2}, {"minimum": 4}, {"adder": 5}])
    def test_rejects_non_divisor_ways(self, bad):
        with pytest.raises(HardwareModelError):
            ClusterWays(**bad)

    def test_intermediate_ways_allowed(self):
        ClusterWays(3, 3, 3)
        ClusterWays(3, 3, 2)


class TestPaperLatencies:
    """The five Table 3 configurations must schedule exactly as published."""

    EXPECTED = {
        "1-1-1 way": (27, 9),
        "9-1-1 way": (19, 9),
        "1-9-1 way": (20, 9),
        "1-1-6 way": (22, 9),
        "9-9-6 way": (7, 1),
    }

    @pytest.mark.parametrize("ways", TABLE3_WAYS, ids=lambda w: w.label)
    def test_latency_and_ii(self, ways):
        sched = schedule_cluster_unit(ways)
        latency, ii = self.EXPECTED[ways.label]
        assert sched.latency == latency
        assert sched.initiation_interval == ii

    def test_throughput_derived_from_ii(self):
        sched = schedule_cluster_unit(ClusterWays(9, 9, 6))
        assert sched.throughput_pixels_per_cycle == 1.0
        sched = schedule_cluster_unit(ClusterWays(1, 1, 1))
        assert sched.throughput_pixels_per_cycle == pytest.approx(1 / 9)


class TestSchedulingStructure:
    def test_more_ways_never_slower(self):
        """Unrolling a stage can only reduce latency and II."""
        base = schedule_cluster_unit(ClusterWays(1, 1, 1))
        for ways in (ClusterWays(3, 1, 1), ClusterWays(9, 3, 2), ClusterWays(9, 9, 6)):
            sched = schedule_cluster_unit(ways)
            assert sched.latency <= base.latency
            assert sched.initiation_interval <= base.initiation_interval

    def test_ii_bound_by_slowest_stage(self):
        # Unrolling only the adder leaves the 9-trip stages binding.
        sched = schedule_cluster_unit(ClusterWays(1, 1, 6))
        assert sched.initiation_interval == 9

    def test_intermediate_configuration(self):
        sched = schedule_cluster_unit(ClusterWays(3, 3, 3))
        assert sched.initiation_interval == 3
        # distance ceil(9/3)+3 = 6, min ceil(9/3)+1 = 4, adder ceil(6/3) = 2.
        assert sched.latency == 12
