"""Unit tests for the ground-truth region generators."""

import numpy as np
import pytest

from repro.data import (
    add_disk_regions,
    relabel_sequential,
    stripe_regions,
    voronoi_regions,
    warped_voronoi_regions,
)
from repro.errors import DatasetError


class TestVoronoi:
    def test_covers_image_with_dense_labels(self, rng):
        labels = voronoi_regions((40, 60), 7, rng)
        assert labels.shape == (40, 60)
        assert labels.min() == 0
        assert labels.max() <= 6

    def test_every_site_owns_some_pixels_usually(self, rng):
        labels = voronoi_regions((60, 60), 5, rng)
        assert len(np.unique(labels)) >= 4

    def test_single_region(self, rng):
        labels = voronoi_regions((10, 10), 1, rng)
        assert (labels == 0).all()

    def test_rejects_zero_regions(self, rng):
        with pytest.raises(DatasetError):
            voronoi_regions((10, 10), 0, rng)

    def test_rejects_more_regions_than_pixels(self, rng):
        with pytest.raises(DatasetError):
            voronoi_regions((4, 4), 100, rng)

    def test_regions_are_spatially_coherent(self, rng):
        """Voronoi cells are convex: horizontal runs of each label are
        contiguous in every row."""
        labels = voronoi_regions((30, 50), 6, rng)
        for row in labels:
            changes = np.count_nonzero(np.diff(row))
            # A row crossing k convex cells changes label exactly k-1 times;
            # with 6 cells at most 5 changes.
            assert changes <= 5


class TestWarpedVoronoi:
    def test_shape_and_range(self, rng):
        labels = warped_voronoi_regions((40, 60), 8, rng)
        assert labels.shape == (40, 60)
        assert labels.max() <= 7

    def test_zero_warp_close_to_plain_voronoi(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        plain = voronoi_regions((30, 40), 5, rng1)
        warped = warped_voronoi_regions((30, 40), 5, rng2, warp_amplitude=0.0)
        assert (plain == warped).mean() > 0.99

    def test_rejects_negative_amplitude(self, rng):
        with pytest.raises(DatasetError):
            warped_voronoi_regions((20, 20), 4, rng, warp_amplitude=-0.1)


class TestStripes:
    def test_stripe_count(self, rng):
        labels = stripe_regions((50, 50), 5, rng)
        assert len(np.unique(labels)) == 5

    def test_stripes_are_parallel_bands(self, rng):
        labels = stripe_regions((40, 40), 4, rng)
        # Band structure: each label's pixels form one contiguous range of
        # projections; verified by no label being adjacent to a non-
        # consecutive label.
        horiz = np.abs(np.diff(labels.astype(int), axis=1))
        vert = np.abs(np.diff(labels.astype(int), axis=0))
        assert max(horiz.max(), vert.max()) <= 1

    def test_rejects_zero(self, rng):
        with pytest.raises(DatasetError):
            stripe_regions((10, 10), 0, rng)


class TestDisks:
    def test_disks_add_labels(self, rng):
        base = voronoi_regions((50, 50), 4, rng)
        out = add_disk_regions(base, 2, rng)
        assert out.max() > base.max()

    def test_zero_disks_is_identity(self, rng):
        base = voronoi_regions((30, 30), 3, rng)
        out = add_disk_regions(base, 0, rng)
        assert np.array_equal(out, base)

    def test_input_not_mutated(self, rng):
        base = voronoi_regions((30, 30), 3, rng)
        before = base.copy()
        add_disk_regions(base, 3, rng)
        assert np.array_equal(base, before)

    def test_rejects_bad_radius_range(self, rng):
        base = voronoi_regions((30, 30), 3, rng)
        with pytest.raises(DatasetError):
            add_disk_regions(base, 1, rng, radius_range=(0.2, 0.1))


class TestRelabel:
    def test_dense_output(self):
        labels = np.array([[5, 5, 9], [9, 2, 2]])
        out = relabel_sequential(labels)
        assert sorted(np.unique(out)) == [0, 1, 2]

    def test_preserves_partition(self):
        labels = np.array([[5, 5, 9], [9, 2, 2]])
        out = relabel_sequential(labels)
        # Same-label pixels stay same-label, different stay different.
        for v in np.unique(labels):
            vals = np.unique(out[labels == v])
            assert len(vals) == 1

    def test_first_appearance_order(self):
        labels = np.array([[7, 3, 7, 1]])
        out = relabel_sequential(labels)
        # np.unique sorts by value: 1->0, 3->1, 7->2.
        assert list(out[0]) == [2, 1, 2, 0]
