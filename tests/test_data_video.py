"""Tests for the synthetic video sequence substrate."""

import numpy as np
import pytest

from repro.data import SceneConfig, VideoSequence
from repro.errors import DatasetError

CFG = SceneConfig(height=48, width=64, n_regions=6, n_disks=1, noise=0.0)


class TestVideoSequence:
    def test_length_and_indexing(self):
        seq = VideoSequence(5, config=CFG, seed=2)
        assert len(seq) == 5
        frames = list(seq)
        assert len(frames) == 5
        assert frames[3].index == 3

    def test_frames_share_base_scene_statistics(self):
        seq = VideoSequence(4, config=CFG, motion="static", noise_sigma=0.0, seed=2)
        a, b = seq[0], seq[3]
        assert np.array_equal(a.image, b.image)
        assert np.array_equal(a.gt_labels, b.gt_labels)

    def test_noise_varies_per_frame(self):
        seq = VideoSequence(3, config=CFG, motion="static", noise_sigma=5.0, seed=2)
        assert not np.array_equal(seq[0].image, seq[1].image)

    def test_deterministic(self):
        a = VideoSequence(4, config=CFG, seed=9)
        b = VideoSequence(4, config=CFG, seed=9)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.image, fb.image)

    def test_gt_moves_with_content(self):
        seq = VideoSequence(4, config=CFG, motion="pan", amplitude=2.0,
                            noise_sigma=0.0, seed=1)
        f0, f2 = seq[0], seq[2]
        dx, dy = f2.offset
        rolled = np.roll(np.roll(f0.gt_labels, dy, axis=0), dx, axis=1)
        assert np.array_equal(f2.gt_labels, rolled)

    def test_shake_is_bounded(self):
        seq = VideoSequence(20, config=CFG, motion="shake", amplitude=3.0, seed=4)
        for frame in seq:
            assert abs(frame.offset[0]) <= 4
            assert abs(frame.offset[1]) <= 4

    def test_pan_is_monotone(self):
        seq = VideoSequence(5, config=CFG, motion="pan", amplitude=3.0, seed=4)
        xs = [f.offset[0] for f in seq]
        assert xs == sorted(xs)
        assert xs[-1] > xs[0]

    def test_out_of_range_index(self):
        seq = VideoSequence(2, config=CFG)
        with pytest.raises(IndexError):
            seq[2]

    def test_validation(self):
        with pytest.raises(DatasetError):
            VideoSequence(0, config=CFG)
        with pytest.raises(DatasetError):
            VideoSequence(3, config=CFG, motion="zoom")
        with pytest.raises(DatasetError):
            VideoSequence(3, config=CFG, amplitude=-1)
