"""Integration tests for the segmentation engine and public API."""

import numpy as np
import pytest

from repro.core import FixedDatapath, SlicParams, run_segmentation, slic, sslic
from repro.errors import ConfigurationError, ImageError
from repro.metrics import (
    achievable_segmentation_accuracy,
    superpixel_size_stats,
    undersegmentation_error,
)


class TestBasicContracts:
    def test_slic_output_shapes(self, small_scene):
        r = slic(small_scene.image, n_superpixels=24)
        assert r.labels.shape == small_scene.image.shape[:2]
        assert r.labels.dtype == np.int32
        assert r.centers.shape == (r.n_superpixels, 5)

    def test_sslic_output_shapes(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=24)
        assert r.labels.shape == small_scene.image.shape[:2]
        assert r.subiterations == 2 * r.iterations

    def test_labels_within_cluster_range(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=24)
        assert r.labels.min() >= 0
        assert r.labels.max() < r.n_superpixels

    def test_float_image_accepted(self, small_scene):
        img = small_scene.image.astype(np.float64) / 255.0
        r = slic(img, n_superpixels=16, max_iterations=2)
        assert r.labels.shape == img.shape[:2]

    def test_rejects_non_rgb(self):
        with pytest.raises(ImageError):
            slic(np.zeros((10, 10)), n_superpixels=4)

    def test_rejects_bad_params_type(self, small_scene):
        with pytest.raises(ConfigurationError):
            slic(small_scene.image, params="not params")

    def test_timings_populated(self, small_scene):
        r = slic(small_scene.image, n_superpixels=16, max_iterations=2)
        for phase in ("color_conversion", "initialization", "distance_min",
                      "center_update", "connectivity"):
            assert phase in r.timings
        assert r.total_time > 0

    def test_deterministic(self, small_scene):
        a = sslic(small_scene.image, n_superpixels=24, max_iterations=3)
        b = sslic(small_scene.image, n_superpixels=24, max_iterations=3)
        assert np.array_equal(a.labels, b.labels)


class TestQuality:
    def test_slic_recovers_clean_regions(self, small_scene):
        r = slic(small_scene.image, n_superpixels=32)
        assert undersegmentation_error(r.labels, small_scene.gt_labels) < 0.05
        assert achievable_segmentation_accuracy(r.labels, small_scene.gt_labels) > 0.95

    def test_sslic_matches_slic_quality(self, small_scene):
        r_s = slic(small_scene.image, n_superpixels=32, max_iterations=8,
                   convergence_threshold=0.0)
        r_ss = sslic(small_scene.image, n_superpixels=32, max_iterations=8,
                     convergence_threshold=0.0)
        u_s = undersegmentation_error(r_s.labels, small_scene.gt_labels)
        u_ss = undersegmentation_error(r_ss.labels, small_scene.gt_labels)
        assert abs(u_s - u_ss) < 0.05

    def test_more_iterations_not_worse_on_hard_scene(self, hard_scene):
        u = {}
        for iters in (1, 6):
            r = slic(hard_scene.image, n_superpixels=48, compactness=20.0,
                     max_iterations=iters, convergence_threshold=0.0)
            u[iters] = undersegmentation_error(r.labels, hard_scene.gt_labels)
        assert u[6] <= u[1] + 0.01

    def test_connectivity_removes_tiny_fragments(self, hard_scene):
        r = sslic(hard_scene.image, n_superpixels=48, max_iterations=4)
        stats = superpixel_size_stats(r.labels)
        s2 = hard_scene.image.shape[0] * hard_scene.image.shape[1] / 48
        assert stats["min_area"] >= 0.25 * s2 * 0.5  # factor with slack


class TestConvergence:
    def test_converges_before_cap_on_easy_scene(self, small_scene):
        r = slic(small_scene.image, n_superpixels=24, max_iterations=30,
                 convergence_threshold=0.5)
        assert r.converged
        assert r.iterations < 30

    def test_zero_threshold_runs_all_iterations(self, small_scene):
        r = slic(small_scene.image, n_superpixels=24, max_iterations=4,
                 convergence_threshold=0.0)
        assert not r.converged
        assert r.iterations == 4

    def test_movement_history_decreases(self, small_scene):
        r = slic(small_scene.image, n_superpixels=24, max_iterations=8,
                 convergence_threshold=0.0)
        hist = r.movement_history
        assert len(hist) == 8
        assert hist[-1] < hist[0]

    def test_max_subiterations_override(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=24, max_subiterations=3,
                  convergence_threshold=0.0)
        assert r.subiterations == 3


class TestVariants:
    @pytest.mark.parametrize("ratio", [1.0, 0.5, 0.25])
    def test_ppa_ratios(self, small_scene, ratio):
        r = sslic(small_scene.image, n_superpixels=24, subsample_ratio=ratio,
                  max_iterations=3, convergence_threshold=0.0)
        assert r.subiterations == 3 * int(round(1 / ratio))

    @pytest.mark.parametrize("strategy", ["strided", "checkerboard", "rows", "random"])
    def test_subset_strategies(self, small_scene, strategy):
        r = sslic(small_scene.image, n_superpixels=24, subset_strategy=strategy,
                  max_iterations=2)
        assert r.labels.max() < r.n_superpixels

    @pytest.mark.parametrize("mode", ["accumulate", "subset", "all_assigned"])
    def test_center_update_modes(self, small_scene, mode):
        r = sslic(small_scene.image, n_superpixels=24, center_update_mode=mode,
                  max_iterations=3)
        assert undersegmentation_error(r.labels, small_scene.gt_labels) < 0.1

    def test_cpa_subsampled(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=24, architecture="cpa",
                  subsample_ratio=0.5, max_iterations=3)
        assert r.labels.shape == small_scene.image.shape[:2]

    def test_dynamic_neighbors(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=24, static_neighbors=False,
                  max_iterations=3)
        assert undersegmentation_error(r.labels, small_scene.gt_labels) < 0.1

    def test_fixed_datapath_end_to_end(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=24,
                  datapath=FixedDatapath(bits=8), max_iterations=4)
        assert undersegmentation_error(r.labels, small_scene.gt_labels) < 0.1

    def test_no_connectivity_option(self, small_scene):
        r = sslic(small_scene.image, n_superpixels=24, enforce_connectivity=False,
                  max_iterations=2)
        assert r.labels.shape == small_scene.image.shape[:2]


class TestWarmStart:
    def test_warm_centers_accepted(self, small_scene):
        first = sslic(small_scene.image, n_superpixels=24, max_iterations=3)
        second = sslic(
            small_scene.image,
            n_superpixels=24,
            max_iterations=1,
            warm_centers=first.centers,
            warm_labels=first.labels,
        )
        assert second.labels.shape == first.labels.shape

    def test_warm_start_converges_immediately(self, small_scene):
        first = slic(small_scene.image, n_superpixels=24, max_iterations=15,
                     convergence_threshold=0.0)
        resumed = slic(
            small_scene.image,
            n_superpixels=24,
            max_iterations=5,
            convergence_threshold=0.5,
            warm_centers=first.centers,
        )
        assert resumed.converged
        assert resumed.iterations == 1

    def test_warm_centers_shape_validated(self, small_scene):
        with pytest.raises(ConfigurationError):
            sslic(small_scene.image, n_superpixels=24,
                  warm_centers=np.zeros((3, 5)))

    def test_warm_labels_range_validated(self, small_scene):
        bad = np.full(small_scene.image.shape[:2], 9999, dtype=np.int32)
        with pytest.raises(ConfigurationError):
            sslic(small_scene.image, n_superpixels=24, warm_labels=bad)

    def test_warm_start_independent_of_perturbation(self, small_scene):
        """Warm centers replace the grid seeds wholesale, so skipping
        initial-center derivation and gradient perturbation on warm
        frames must be invisible: results are bit-identical whatever
        perturb_centers says."""
        first = sslic(small_scene.image, n_superpixels=24, max_iterations=3)
        runs = [
            sslic(
                small_scene.image,
                n_superpixels=24,
                max_iterations=2,
                perturb_centers=flag,
                warm_centers=first.centers,
                warm_labels=first.labels,
            )
            for flag in (True, False)
        ]
        assert np.array_equal(runs[0].labels, runs[1].labels)
        assert np.array_equal(runs[0].centers, runs[1].centers)


class TestFusedColor:
    """The fused color-conversion knob: identical results, observable."""

    def _run(self, image, **kw):
        return slic(
            image, n_superpixels=20, max_iterations=3,
            datapath=FixedDatapath(bits=8), **kw,
        )

    def test_param_off_matches_on(self, small_scene):
        on = self._run(small_scene.image, fused_color=True)
        off = self._run(small_scene.image, fused_color=False)
        assert np.array_equal(on.labels, off.labels)
        assert np.array_equal(on.centers, off.centers)

    def test_env_var_disables(self, small_scene, monkeypatch):
        from repro.core.engine import FUSED_COLOR_ENV

        monkeypatch.setenv(FUSED_COLOR_ENV, "0")
        off = self._run(small_scene.image)
        monkeypatch.setenv(FUSED_COLOR_ENV, "1")
        on = self._run(small_scene.image)
        assert np.array_equal(on.labels, off.labels)

    def test_fused_frames_counter(self, small_scene):
        from repro.obs import MemorySink, Tracer

        for flag, expected in ((True, 1), (False, 0)):
            tracer = Tracer(MemorySink())
            self._run(small_scene.image, fused_color=flag, tracer=tracer)
            tracer.flush()
            counts = [
                e for e in tracer.sink.events
                if e.get("name") == "color.fused_frames"
            ]
            assert len(counts) == expected, flag
            tracer.close()


class TestCenterUpdateMemory:
    """The CPA center update streams from the flat lab array; the old
    (H*W, 5) float64 values cache must not come back."""

    def test_no_lab5_sized_engine_allocation(self):
        import tracemalloc

        import repro.core.engine as engine_mod

        h, w = 120, 160
        rng = np.random.default_rng(7)
        image = rng.integers(0, 256, size=(h, w, 3), dtype=np.uint8)
        params = SlicParams(
            n_superpixels=40, max_iterations=2, architecture="cpa",
            convergence_threshold=0.0, kernel_backend="vectorized",
        )

        from repro.obs import MemorySink, Tracer

        stats = []

        class SweepSnapshotTracer(Tracer):
            """Snapshots live allocations at the end of each sweep —
            while every per-run buffer is still alive."""

            def end_span(self, span, status="ok"):
                if getattr(span, "name", "") == "sweep":
                    snap = tracemalloc.take_snapshot()
                    stats.append(
                        snap.filter_traces([
                            tracemalloc.Filter(True, engine_mod.__file__)
                        ]).statistics("lineno")
                    )
                super().end_span(span, status)

        tracer = SweepSnapshotTracer(MemorySink())
        tracemalloc.start()
        try:
            run_segmentation(image, params, tracer=tracer)
        finally:
            tracemalloc.stop()
            tracer.close()

        assert stats, "no sweep snapshots captured"
        lab5_bytes = h * w * 5 * 8
        for sweep_stats in stats:
            for stat in sweep_stats:
                # Largest legitimate engine buffer is the float64
                # distance buffer (h*w*8); the removed cache was 5x it.
                assert stat.size < lab5_bytes * 0.9, (
                    f"engine allocation of {stat.size} bytes at "
                    f"{stat.traceback} looks like a lab5 cache"
                )


class TestEquivalences:
    def test_ppa_ratio1_equals_modes(self, small_scene):
        """With no subsampling all center-update modes coincide per sweep."""
        a = sslic(small_scene.image, n_superpixels=24, subsample_ratio=1.0,
                  max_iterations=3, center_update_mode="accumulate",
                  convergence_threshold=0.0)
        b = sslic(small_scene.image, n_superpixels=24, subsample_ratio=1.0,
                  max_iterations=3, center_update_mode="subset",
                  convergence_threshold=0.0)
        assert np.array_equal(a.labels, b.labels)

    def test_run_segmentation_is_the_engine(self, small_scene):
        params = SlicParams(n_superpixels=24, max_iterations=2,
                            convergence_threshold=0.0, architecture="cpa")
        a = run_segmentation(small_scene.image, params)
        b = slic(small_scene.image, params)
        assert np.array_equal(a.labels, b.labels)

    def test_accumulate_final_sweep_equals_full_update(self, small_scene):
        """In accumulate mode the sweep-final center update averages every
        pixel — verified against a manual recomputation."""
        r = sslic(small_scene.image, n_superpixels=24, subsample_ratio=0.5,
                  max_iterations=2, convergence_threshold=0.0,
                  enforce_connectivity=False)
        from repro.color import rgb_to_lab

        lab = rgb_to_lab(small_scene.image)
        h, w = lab.shape[:2]
        yy, xx = np.mgrid[0:h, 0:w]
        manual = np.zeros((r.n_superpixels, 5))
        for k in range(r.n_superpixels):
            mask = r.labels == k
            if mask.any():
                manual[k, 0:3] = lab[mask].mean(axis=0)
                manual[k, 3] = xx[mask].mean()
                manual[k, 4] = yy[mask].mean()
            else:
                manual[k] = r.centers[k]
        # Labels from the final sub-iteration assignments produce centers;
        # the stored centers come from those same assignments.
        assert np.allclose(manual, r.centers, atol=1.5)
