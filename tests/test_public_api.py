"""Public-API surface tests: imports, types, and the README quickstart."""

import numpy as np
import pytest

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_error_hierarchy(self):
        for exc in (
            repro.ConfigurationError,
            repro.ImageError,
            repro.FixedPointError,
            repro.DatasetError,
            repro.MetricError,
            repro.HardwareModelError,
            repro.ConvergenceError,
        ):
            assert issubclass(exc, repro.ReproError)

    def test_resolution_constants(self):
        assert repro.HD_1080.pixels == 1920 * 1080
        assert repro.VGA.shape == (480, 640)
        assert str(repro.HD_720) == "1280x768"


class TestQuickstartFlow:
    """The exact flow the README shows must work end to end."""

    def test_quickstart(self):
        scene = repro.generate_scene(seed=1)
        result = repro.sslic(scene.image, n_superpixels=150)
        assert result.labels.shape == scene.image.shape[:2]
        use = repro.undersegmentation_error(result.labels, scene.gt_labels)
        recall = repro.boundary_recall(result.labels, scene.gt_labels)
        assert 0.0 <= use < 0.5
        assert 0.5 < recall <= 1.0

    def test_accelerator_report_flow(self):
        report = repro.AcceleratorModel(repro.AcceleratorConfig()).report()
        assert report.real_time
        assert report.area_mm2 < 0.1
        assert report.power_mw < 100

    def test_hardware_simulation_flow(self):
        scene = repro.generate_scene(
            repro.SceneConfig(height=48, width=64, n_regions=6), seed=2
        )
        model = repro.AcceleratorModel()
        result, report = model.simulate(scene.image, n_superpixels=12)
        assert result.labels.max() < result.n_superpixels
        assert report.fps > 0
