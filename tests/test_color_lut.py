"""Unit tests for the LUT primitives (gamma table, PWL cube root)."""

import numpy as np
import pytest

from repro.color import build_cbrt_pwl, build_gamma_lut
from repro.color.constants import LAB_EPSILON, LAB_KAPPA
from repro.color.lut import DEFAULT_CBRT_BREAKPOINTS, PiecewiseLinearLut
from repro.color.reference import srgb_gamma_expand
from repro.errors import ConfigurationError
from repro.fixedpoint import QFormat


def _f_ref(t):
    return t ** (1.0 / 3.0) if t > LAB_EPSILON else (LAB_KAPPA * t + 16.0) / 116.0


class TestGammaLut:
    def test_length_256(self):
        assert len(build_gamma_lut()) == 256

    def test_endpoints(self):
        lut = build_gamma_lut(12)
        assert lut[0] == 0
        assert lut[255] == 1 << 12  # exactly 1.0

    def test_matches_reference_within_half_lsb(self):
        frac = 12
        lut = build_gamma_lut(frac)
        codes = np.arange(256) / 255.0
        exact = srgb_gamma_expand(codes) * (1 << frac)
        assert np.abs(lut - exact).max() <= 0.5 + 1e-9

    def test_monotone(self):
        assert (np.diff(build_gamma_lut()) >= 0).all()

    def test_rejects_bad_frac(self):
        with pytest.raises(ConfigurationError):
            build_gamma_lut(0)
        with pytest.raises(ConfigurationError):
            build_gamma_lut(40)


class TestPiecewiseLinearLut:
    def test_default_has_8_segments(self):
        assert build_cbrt_pwl().n_segments == 8
        assert len(DEFAULT_CBRT_BREAKPOINTS) == 9

    def test_linear_branch_is_near_exact(self):
        # The first segment covers Equation 4's linear branch exactly (a
        # line fits a line); only coefficient quantization remains.
        lut = build_cbrt_pwl()
        ts = np.linspace(0.0, LAB_EPSILON * 0.99, 64)
        exact = np.array([_f_ref(t) for t in ts])
        approx = lut.eval_float(ts)
        assert np.abs(approx - exact).max() < 2e-3

    def test_max_error_small(self):
        lut = build_cbrt_pwl()
        assert lut.max_abs_error(_f_ref) < 0.015

    def test_monotone_outputs(self):
        lut = build_cbrt_pwl()
        ts = np.linspace(0.0, 1.1, 512)
        out = lut.eval_float(ts)
        assert (np.diff(out) >= -1e-9).all()

    def test_clamps_above_range(self):
        lut = build_cbrt_pwl()
        # Inputs past the last breakpoint use the last segment.
        v_edge = lut.eval_float(1.1)
        v_past = lut.eval_float(1.5)
        assert v_past >= v_edge

    def test_fit_rejects_nonincreasing_breakpoints(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinearLut.fit(
                lambda x: x, [0.0, 1.0, 1.0], QFormat(16, 12, signed=False),
                QFormat(16, 12, signed=False),
            )

    def test_fit_rejects_too_few_breakpoints(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinearLut.fit(
                lambda x: x, [0.0], QFormat(16, 12, signed=False),
                QFormat(16, 12, signed=False),
            )

    def test_identity_function_fit(self):
        in_fmt = QFormat(16, 12, signed=False)
        out_fmt = QFormat(16, 12, signed=False)
        lut = PiecewiseLinearLut.fit(lambda x: x, [0.0, 0.5, 1.0], in_fmt, out_fmt)
        ts = np.linspace(0, 1, 33)
        assert np.abs(lut.eval_float(ts) - ts).max() < 1e-3

    def test_segment_count_vs_error_tradeoff(self):
        """More segments must not increase the max error (design check)."""
        in_fmt = QFormat(16, 12, signed=False)
        out_fmt = QFormat(16, 14, signed=False)
        coarse = PiecewiseLinearLut.fit(
            _f_ref, np.linspace(LAB_EPSILON, 1.1, 3), in_fmt, out_fmt
        )
        fine = PiecewiseLinearLut.fit(
            _f_ref, np.linspace(LAB_EPSILON, 1.1, 17), in_fmt, out_fmt
        )
        err = lambda lut: max(
            abs(float(lut.eval_float(t)) - _f_ref(t))
            for t in np.linspace(LAB_EPSILON, 1.1, 200)
        )
        assert err(fine) <= err(coarse)
