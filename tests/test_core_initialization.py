"""Unit tests for grid initialization and gradient perturbation."""

import numpy as np
import pytest

from repro.color import rgb_to_lab
from repro.core import (
    gradient_magnitude,
    grid_geometry,
    initial_centers,
    perturb_centers,
)
from repro.errors import ConfigurationError


class TestGridGeometry:
    def test_square_grid(self):
        gh, gw, ys, xs = grid_geometry((100, 100), 100)
        assert gh == 10 and gw == 10
        assert len(ys) == 10 and len(xs) == 10

    def test_centers_inside_image(self):
        gh, gw, ys, xs = grid_geometry((48, 72), 30)
        assert ys.min() > 0 and ys.max() < 48
        assert xs.min() > 0 and xs.max() < 72

    def test_centers_evenly_spaced(self):
        _, _, ys, xs = grid_geometry((100, 100), 25)
        assert np.allclose(np.diff(ys), np.diff(ys)[0])
        assert np.allclose(np.diff(xs), np.diff(xs)[0])

    def test_aspect_ratio_respected(self):
        gh, gw, _, _ = grid_geometry((50, 200), 64)
        assert gw > gh

    def test_realized_count_close_to_requested(self):
        for k in (10, 50, 150, 333):
            gh, gw, _, _ = grid_geometry((120, 180), k)
            assert abs(gh * gw - k) / k < 0.35

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            grid_geometry((10, 10), 0)

    def test_rejects_more_than_pixels(self):
        with pytest.raises(ConfigurationError):
            grid_geometry((4, 4), 100)

    def test_single_superpixel(self):
        gh, gw, _, _ = grid_geometry((10, 10), 1)
        assert gh == 1 and gw == 1


class TestInitialCenters:
    def test_shape_and_order(self, rgb_image):
        lab = rgb_to_lab(rgb_image)
        centers = initial_centers(lab, 24)
        gh, gw, _, _ = grid_geometry(lab.shape[:2], 24)
        assert centers.shape == (gh * gw, 5)
        # Row-major grid order: x increases within each row of gw entries.
        first_row = centers[:gw]
        assert (np.diff(first_row[:, 3]) > 0).all()

    def test_lab_values_sampled_from_image(self, rgb_image):
        lab = rgb_to_lab(rgb_image)
        centers = initial_centers(lab, 12)
        for c in centers[:4]:
            x, y = int(round(c[3])), int(round(c[4]))
            x = min(x, lab.shape[1] - 1)
            y = min(y, lab.shape[0] - 1)
            assert np.allclose(c[0:3], lab[y, x], atol=1e-9)


class TestGradient:
    def test_constant_image_zero_gradient(self):
        assert gradient_magnitude(np.ones((8, 8, 3))).max() == 0.0

    def test_edge_detected(self):
        img = np.zeros((8, 8, 1))
        img[:, 4:] = 10.0
        grad = gradient_magnitude(img)
        assert grad[:, 3:5].min() > 0
        assert grad[:, 0].max() == 0.0

    def test_2d_input_supported(self):
        img = np.zeros((6, 6))
        img[3:, :] = 5.0
        assert gradient_magnitude(img).max() > 0


class TestPerturb:
    def test_moves_off_edges(self):
        lab = np.zeros((20, 20, 3))
        lab[:, 10:] = 50.0  # sharp vertical edge at x=10
        centers = np.array([[0.0, 0.0, 0.0, 10.0, 10.0]])  # sitting on the edge
        out = perturb_centers(centers, lab)
        assert out[0, 3] != 10.0  # moved off the gradient ridge

    def test_stays_within_3x3(self):
        rng = np.random.default_rng(0)
        lab = rng.normal(size=(30, 30, 3))
        centers = initial_centers(lab, 9)
        out = perturb_centers(centers, lab)
        assert np.abs(out[:, 3] - centers[:, 3]).max() <= 1.0 + 1e-9
        assert np.abs(out[:, 4] - centers[:, 4]).max() <= 1.0 + 1e-9

    def test_refreshes_lab_from_new_position(self):
        rng = np.random.default_rng(1)
        lab = rng.normal(size=(30, 30, 3))
        out = perturb_centers(initial_centers(lab, 9), lab)
        for c in out:
            assert np.allclose(c[0:3], lab[int(c[4]), int(c[3])])

    def test_input_not_mutated(self):
        rng = np.random.default_rng(2)
        lab = rng.normal(size=(20, 20, 3))
        centers = initial_centers(lab, 4)
        before = centers.copy()
        perturb_centers(centers, lab)
        assert np.array_equal(centers, before)
