"""Property-based tests for the downstream applications."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import SuperpixelCodec, merge_regions, psnr
from repro.data import SceneConfig, generate_scene


@st.composite
def labeled_images(draw):
    """A random small RGB image with a random (dense) label map."""
    h = draw(st.integers(6, 20))
    w = draw(st.integers(6, 20))
    n_labels = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    image = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
    labels = rng.integers(0, n_labels, (h, w)).astype(np.int32)
    # Densify label range.
    uniq, dense = np.unique(labels, return_inverse=True)
    return image, dense.reshape(h, w).astype(np.int32)


@given(data=labeled_images(), target=st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_merge_reaches_target_or_structural_floor(data, target):
    image, labels = data
    merged = merge_regions(labels, image, n_regions=target)
    # Merging can always reach any target >= 1 on a connected RAG.
    assert merged.n_regions <= max(target, 1) or merged.n_regions <= labels.max() + 1
    assert merged.labels.shape == labels.shape
    # Region count equals the distinct labels present.
    assert merged.n_regions == len(np.unique(merged.labels))


@given(data=labeled_images())
@settings(max_examples=40, deadline=None)
def test_merge_preserves_refinement(data):
    """Every input superpixel maps into exactly one merged region."""
    image, labels = data
    merged = merge_regions(labels, image, n_regions=2)
    for sp in np.unique(labels):
        assert len(np.unique(merged.labels[labels == sp])) == 1


@given(data=labeled_images())
@settings(max_examples=40, deadline=None)
def test_codec_roundtrip_invariants(data):
    image, labels = data
    codec = SuperpixelCodec()
    code = codec.encode(image, labels)
    recon = codec.decode(code)
    assert recon.shape == image.shape
    assert recon.dtype == np.uint8
    # Rate estimate positive and below raw for non-degenerate maps.
    assert code.estimated_bits() > 0
    # Reconstruction error bounded by the dynamic range.
    assert psnr(image, recon) > 5.0 or psnr(image, recon) == float("inf")


@given(seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_psnr_symmetric(seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 256, (10, 10, 3), dtype=np.uint8)
    b = rng.integers(0, 256, (10, 10, 3), dtype=np.uint8)
    assert psnr(a, b) == pytest.approx(psnr(b, a))
