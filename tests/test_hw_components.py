"""Unit tests for the color/center/scratchpad cost models and DRAM model."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    CenterUnitModel,
    ColorUnitModel,
    DramModel,
    ScratchpadModel,
    TECH_16NM,
)


class TestColorUnit:
    def test_1080p_takes_about_1p4_ms(self):
        unit = ColorUnitModel()
        cycles = unit.cycles_for_pixels(1920 * 1080)
        ms = TECH_16NM.cycles_to_ms(cycles)
        assert ms == pytest.approx(1.4, rel=0.03)  # Section 7's value

    def test_rejects_negative(self):
        with pytest.raises(HardwareModelError):
            ColorUnitModel().cycles_for_pixels(-1)

    def test_energy_scales_with_pixels(self):
        unit = ColorUnitModel()
        assert unit.energy_uj(2000) == pytest.approx(2 * unit.energy_uj(1000))


class TestCenterUnit:
    def test_six_divisions_per_superpixel(self):
        unit = CenterUnitModel()
        cycles = unit.cycles_for_update(100)
        assert cycles == 100 * 6 * unit.div_latency_cycles

    def test_energy(self):
        unit = CenterUnitModel()
        assert unit.energy_uj(1000, 9) == pytest.approx(
            1000 * 6 * 9 * unit.energy_per_division_pj * 1e-6
        )

    def test_rejects_negative(self):
        with pytest.raises(HardwareModelError):
            CenterUnitModel().cycles_for_update(-1)


class TestScratchpads:
    def test_total_and_bytes(self):
        pads = ScratchpadModel(buffer_kb_per_channel=4.0)
        assert pads.total_kb == 16.0
        assert pads.buffer_bytes == 4096

    def test_area_uses_fitted_density(self):
        pads = ScratchpadModel(buffer_kb_per_channel=4.0)
        assert pads.area_mm2() == pytest.approx(16 * TECH_16NM.sram_area_per_kb)

    def test_rejects_zero_size(self):
        with pytest.raises(HardwareModelError):
            ScratchpadModel(buffer_kb_per_channel=0.0)


class TestDram:
    def test_transfer_cycles(self):
        dram = DramModel()
        assert dram.transfer_cycles(3200) == pytest.approx(100.0)

    def test_frame_traffic_components(self):
        dram = DramModel()
        t = dram.frame_traffic(1000, 9)
        assert t.input_bytes == 3000
        assert t.iteration_bytes == 5 * 1000 * 9
        assert t.output_bytes == 1000
        assert t.total_bytes == t.input_bytes + t.iteration_bytes + t.output_bytes

    def test_stalls_decrease_with_buffer_size(self):
        dram = DramModel()
        small = dram.stall_cycles(5000, 9, 2000.0, 1024)
        big = dram.stall_cycles(5000, 9, 2000.0, 131072)
        assert small > big

    def test_stall_floor_is_fixed_bursts(self):
        dram = DramModel()
        # Infinite buffer leaves only the fixed per-tile bursts.
        floor = dram.stall_cycles(100, 1, 100.0, 1e12)
        assert floor == pytest.approx(100 * dram.latency_cycles * dram.bursts_per_tile)

    def test_rejects_bad_inputs(self):
        dram = DramModel()
        with pytest.raises(HardwareModelError):
            dram.transfer_cycles(-1)
        with pytest.raises(HardwareModelError):
            dram.stall_cycles(10, 1, 100.0, 0)

    def test_invalid_model_params_rejected(self):
        with pytest.raises(HardwareModelError):
            DramModel(bytes_per_cycle=0)
