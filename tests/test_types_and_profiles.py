"""Tests for shared types, validators, the phase timer, and results."""

import time

import numpy as np
import pytest

from repro.core import PHASES, PhaseTimer, SegmentationResult
from repro.errors import ImageError
from repro.types import (
    HD_1080,
    Resolution,
    as_float_rgb,
    as_uint8_rgb,
    validate_label_map,
    validate_rgb_image,
)


class TestResolution:
    def test_pixels_and_shape(self):
        r = Resolution(1920, 1080)
        assert r.pixels == 2_073_600
        assert r.shape == (1080, 1920)
        assert str(r) == "1920x1080"

    def test_rejects_nonpositive(self):
        with pytest.raises(ImageError):
            Resolution(0, 10)
        with pytest.raises(ImageError):
            Resolution(10, -1)

    def test_constants(self):
        assert HD_1080.width == 1920


class TestValidators:
    def test_uint8_passthrough(self, rgb_image):
        assert validate_rgb_image(rgb_image) is rgb_image

    def test_float_range_enforced(self):
        with pytest.raises(ImageError):
            validate_rgb_image(np.full((3, 3, 3), 1.5))

    def test_small_float_spill_tolerated(self):
        validate_rgb_image(np.full((2, 2, 3), 1.0 + 1e-8))

    def test_wrong_channel_count(self):
        with pytest.raises(ImageError):
            validate_rgb_image(np.zeros((4, 4, 4)))

    def test_int32_rejected(self):
        with pytest.raises(ImageError):
            validate_rgb_image(np.zeros((4, 4, 3), dtype=np.int32))

    def test_as_float_rgb(self, rgb_image):
        out = as_float_rgb(rgb_image)
        assert out.dtype == np.float64
        assert out.max() <= 1.0

    def test_as_uint8_rgb_roundtrip(self, rgb_image):
        assert np.array_equal(as_uint8_rgb(as_float_rgb(rgb_image)), rgb_image)

    def test_label_map_dtype(self):
        with pytest.raises(ImageError):
            validate_label_map(np.zeros((3, 3), dtype=np.float64))

    def test_label_map_negative(self):
        with pytest.raises(ImageError):
            validate_label_map(np.full((2, 2), -1, dtype=np.int32))

    def test_label_map_range_check(self):
        labels = np.array([[0, 5]], dtype=np.int32)
        validate_label_map(labels, n_labels=6)
        with pytest.raises(ImageError):
            validate_label_map(labels, n_labels=5)


class TestPhaseTimer:
    def test_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            time.sleep(0.002)
        with timer.phase("a"):
            time.sleep(0.002)
        with timer.phase("b"):
            pass
        assert timer.totals["a"] >= 0.004
        assert timer.total >= timer.totals["a"]

    def test_fractions_sum_to_one(self):
        timer = PhaseTimer()
        timer.add("x", 3.0)
        timer.add("y", 1.0)
        fr = timer.fractions()
        assert fr["x"] == pytest.approx(0.75)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_exception_still_recorded(self):
        # A phase aborted by an exception records its partial time in a
        # distinct "<name>!aborted" bucket, keeping the clean bucket pure.
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("fail"):
                raise RuntimeError("boom")
        assert "fail" not in timer.totals
        assert timer.totals["fail!aborted"] > 0.0
        assert timer.aborted() == {"fail": timer.totals["fail!aborted"]}
        assert timer.total >= timer.totals["fail!aborted"]

    def test_canonical_phase_names(self):
        assert "distance_min" in PHASES
        assert "color_conversion" in PHASES


class TestSegmentationResult:
    def _mk(self, timings):
        return SegmentationResult(
            labels=np.zeros((4, 4), dtype=np.int32),
            centers=np.zeros((2, 5)),
            n_superpixels=2,
            iterations=1,
            subiterations=1,
            converged=True,
            timings=timings,
        )

    def test_total_time(self):
        r = self._mk({"a": 1.0, "b": 2.0})
        assert r.total_time == 3.0

    def test_timing_fractions(self):
        r = self._mk({"a": 1.0, "b": 3.0})
        assert r.timing_fractions()["b"] == pytest.approx(0.75)

    def test_zero_time_fractions(self):
        r = self._mk({"a": 0.0})
        assert r.timing_fractions()["a"] == 0.0

    def test_repr(self):
        assert "n_superpixels=2" in repr(self._mk({}))
