"""Fake-clock tests for the graceful-degradation quality ladder."""

import numpy as np
import pytest

from repro.core.params import SlicParams
from repro.errors import ConfigurationError
from repro.serve import DEFAULT_LADDER, DegradeController, QualityRung


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make(enabled=True, hold_s=2.0):
    clock = FakeClock()
    ctrl = DegradeController(
        enabled=enabled, overload_ratio=0.75, recover_ratio=0.25,
        hold_s=hold_s, clock=clock,
    )
    return ctrl, clock


class TestQualityRung:
    def test_identity_rung_returns_same_object(self):
        params = SlicParams()
        assert QualityRung("full").apply(params) is params

    def test_overrides_only_reduce_work(self):
        params = SlicParams(max_iterations=2, subsample_ratio=0.1)
        rung = QualityRung("x", max_iterations=4, subsample_ratio=0.25)
        # Caller already cheaper than the rung on both axes: no change.
        assert rung.apply(params) is params

    def test_iteration_cap_applies(self):
        params = SlicParams(max_iterations=10)
        out = QualityRung("x", max_iterations=4).apply(params)
        assert out.max_iterations == 4
        assert params.max_iterations == 10  # frozen source untouched

    def test_default_ladder_shape(self):
        assert DEFAULT_LADDER[0].name == "full"
        assert len(DEFAULT_LADDER) >= 3


class TestLadderTransitions:
    def test_starts_at_full_quality(self):
        ctrl, _ = make()
        assert ctrl.level == 0
        assert not ctrl.degraded

    def test_spike_shorter_than_dwell_does_nothing(self):
        ctrl, clock = make(hold_s=2.0)
        ctrl.observe(1.0)
        clock.advance(1.0)
        assert ctrl.observe(1.0) == 0  # only 1 s above threshold

    def test_sustained_overload_steps_down(self):
        ctrl, clock = make(hold_s=2.0)
        ctrl.observe(1.0)
        clock.advance(2.0)
        assert ctrl.observe(1.0) == 1
        assert ctrl.degraded
        assert ctrl.rung.name == "iter-capped"

    def test_each_rung_needs_its_own_dwell(self):
        ctrl, clock = make(hold_s=2.0)
        ctrl.observe(1.0)
        clock.advance(2.0)
        assert ctrl.observe(1.0) == 1
        # Immediately after the transition the dwell timer re-armed:
        assert ctrl.observe(1.0) == 1
        clock.advance(2.0)
        assert ctrl.observe(1.0) == 2
        assert ctrl.rung.name == "subsampled"

    def test_bottom_of_ladder_holds(self):
        ctrl, clock = make(hold_s=1.0)
        for _ in range(10):
            ctrl.observe(1.0)
            clock.advance(1.5)
        assert ctrl.level == len(ctrl.ladder) - 1

    def test_sustained_recovery_steps_back_up(self):
        ctrl, clock = make(hold_s=2.0)
        ctrl.observe(1.0)
        clock.advance(2.0)
        ctrl.observe(1.0)
        assert ctrl.level == 1
        ctrl.observe(0.0)
        clock.advance(2.0)
        assert ctrl.observe(0.0) == 0
        assert not ctrl.degraded

    def test_dead_zone_resets_both_dwells(self):
        ctrl, clock = make(hold_s=2.0)
        ctrl.observe(1.0)
        clock.advance(1.5)
        ctrl.observe(0.5)  # between recover and overload: reset
        clock.advance(1.0)
        ctrl.observe(1.0)  # dwell restarts here
        clock.advance(1.5)
        assert ctrl.observe(1.0) == 0  # 1.5 s < hold_s since restart
        clock.advance(0.6)
        assert ctrl.observe(1.0) == 1

    def test_transitions_counter(self):
        ctrl, clock = make(hold_s=1.0)
        ctrl.observe(1.0)
        clock.advance(1.0)
        ctrl.observe(1.0)
        ctrl.observe(0.0)
        clock.advance(1.0)
        ctrl.observe(0.0)
        assert ctrl.transitions == 2


class TestDisabledBitIdentity:
    def test_disabled_controller_never_degrades(self):
        ctrl, clock = make(enabled=False, hold_s=0.0)
        for _ in range(5):
            assert ctrl.observe(1.0) == 0
            clock.advance(10.0)
        assert not ctrl.degraded

    def test_disabled_apply_is_the_identity_object(self):
        ctrl, _ = make(enabled=False)
        params = SlicParams(max_iterations=10)
        out, rung, degraded = ctrl.apply(params)
        assert out is params  # same object, not a copy
        assert rung == "full"
        assert not degraded

    def test_level_zero_apply_is_the_identity_object(self):
        ctrl, _ = make(enabled=True)
        params = SlicParams()
        out, _, degraded = ctrl.apply(params)
        assert out is params
        assert not degraded

    def test_disabled_serial_path_output_is_bit_identical(self):
        from repro.core.engine import run_segmentation
        from repro.data import SceneConfig, generate_scene

        image = generate_scene(
            SceneConfig(height=48, width=64), seed=7
        ).image
        params = SlicParams(n_superpixels=32)
        ctrl, _ = make(enabled=False)
        served_params, _, _ = ctrl.apply(params)
        baseline = run_segmentation(image, params)
        served = run_segmentation(image, served_params)
        np.testing.assert_array_equal(baseline.labels, served.labels)

    def test_degraded_apply_reduces_work(self):
        ctrl, clock = make(hold_s=1.0)
        ctrl.observe(1.0)
        clock.advance(1.0)
        ctrl.observe(1.0)
        params = SlicParams(max_iterations=10)
        out, rung, degraded = ctrl.apply(params)
        assert degraded
        assert rung == "iter-capped"
        assert out.max_iterations < params.max_iterations


class TestValidation:
    def test_first_rung_must_be_identity(self):
        with pytest.raises(ConfigurationError):
            DegradeController(
                ladder=(QualityRung("bad", max_iterations=3),)
            )

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            DegradeController(ladder=())

    def test_hysteresis_band_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            DegradeController(overload_ratio=0.3, recover_ratio=0.5)
