"""Unit tests for the Cluster Update Unit cost model (Table 3)."""

import pytest

from repro.errors import HardwareModelError
from repro.hw import ClusterUnitModel, ClusterWays, PAPER_TABLE3, TABLE3_WAYS


class TestTable3Reproduction:
    """Every published Table 3 value within tolerance."""

    @pytest.mark.parametrize("ways", TABLE3_WAYS, ids=lambda w: w.label)
    def test_area_within_rounding(self, ways):
        report = ClusterUnitModel(ways).report()
        paper = PAPER_TABLE3[ways.label]["area_mm2"]
        assert report.area_mm2 == pytest.approx(paper, rel=0.05)

    @pytest.mark.parametrize("ways", TABLE3_WAYS, ids=lambda w: w.label)
    def test_latency_exact(self, ways):
        report = ClusterUnitModel(ways).report()
        assert report.latency_cycles == PAPER_TABLE3[ways.label]["latency_cycles"]

    @pytest.mark.parametrize("ways", TABLE3_WAYS, ids=lambda w: w.label)
    def test_time_within_2pct(self, ways):
        report = ClusterUnitModel(ways).report()
        paper = PAPER_TABLE3[ways.label]["time_ms"]
        assert report.time_ms == pytest.approx(paper, rel=0.02)

    @pytest.mark.parametrize("ways", TABLE3_WAYS, ids=lambda w: w.label)
    def test_energy_within_6pct(self, ways):
        report = ClusterUnitModel(ways).report()
        paper = PAPER_TABLE3[ways.label]["energy_uj"]
        assert report.energy_uj == pytest.approx(paper, rel=0.06)

    @pytest.mark.parametrize("ways", TABLE3_WAYS, ids=lambda w: w.label)
    def test_power_within_6pct(self, ways):
        report = ClusterUnitModel(ways).report()
        paper = PAPER_TABLE3[ways.label]["power_mw"]
        assert report.power_mw == pytest.approx(paper, rel=0.06)

    def test_996_picked_for_throughput(self):
        """The paper's conclusion: 9-9-6 is 9x faster at similar energy."""
        full = ClusterUnitModel(ClusterWays(9, 9, 6)).report()
        minimal = ClusterUnitModel(ClusterWays(1, 1, 1)).report()
        assert full.time_ms * 8.5 < minimal.time_ms
        assert full.energy_uj < 1.15 * minimal.energy_uj
        # ... at the documented area cost (paper: 7.8x).
        assert full.area_mm2 / minimal.area_mm2 == pytest.approx(7.8, rel=0.05)


class TestScalingBehaviour:
    def test_narrower_datapath_smaller_and_cheaper(self):
        wide = ClusterUnitModel(bits=12)
        narrow = ClusterUnitModel(bits=6)
        assert narrow.area_mm2() < wide.area_mm2()
        assert narrow.energy_per_pixel_pj() < wide.energy_per_pixel_pj()

    def test_multiplier_area_scales_quadratically(self):
        a8 = ClusterUnitModel(ClusterWays(9, 1, 1), bits=8).area_mm2()
        a16 = ClusterUnitModel(ClusterWays(9, 1, 1), bits=16).area_mm2()
        # Distance ways dominate this config; quadratic width scaling.
        assert a16 / a8 > 3.0

    def test_cycles_for_pixels(self):
        model = ClusterUnitModel(ClusterWays(9, 9, 6))
        assert model.cycles_for_pixels(0) == 0
        n = 1000
        assert model.cycles_for_pixels(n) == n + 7  # II=1 plus drain

    def test_cycles_rejects_negative(self):
        with pytest.raises(HardwareModelError):
            ClusterUnitModel().cycles_for_pixels(-1)

    def test_bits_validation(self):
        with pytest.raises(HardwareModelError):
            ClusterUnitModel(bits=1)

    def test_energy_splits_into_dynamic_and_static(self):
        m = ClusterUnitModel()
        total = m.energy_per_pixel_pj()
        assert total == pytest.approx(
            m.dynamic_energy_per_pixel_pj() + m.static_energy_per_pixel_pj()
        )
        assert m.dynamic_energy_per_pixel_pj() > m.static_energy_per_pixel_pj()
