"""Unit tests for the integer hardware color pipeline."""

import numpy as np
import pytest

from repro.color import HwColorConverter, LabEncoding, rgb_to_lab
from repro.errors import ConfigurationError, ImageError


class TestLabEncoding:
    def test_code_range_8bit(self):
        enc = LabEncoding(8)
        assert enc.code_max == 255
        assert enc.ab_offset == 128

    def test_uniform_scale_8bit_is_unity(self):
        enc = LabEncoding(8, uniform=True)
        assert enc.ab_scale == pytest.approx(1.0)
        assert enc.l_scale == pytest.approx(1.0)

    def test_nonuniform_l_uses_full_range(self):
        enc = LabEncoding(8, uniform=False)
        assert enc.l_scale == pytest.approx(255 / 100)

    def test_encode_decode_roundtrip_within_step(self):
        enc = LabEncoding(8)
        lab = np.array([[[50.0, 10.0, -20.0], [99.0, -80.0, 60.0]]])
        back = enc.decode(enc.encode(lab))
        assert np.abs(back - lab).max() <= 0.5 / enc.ab_scale + 1e-9

    def test_encode_clips_to_code_range(self):
        enc = LabEncoding(8)
        codes = enc.encode(np.array([200.0, 500.0, -500.0]))
        assert codes.max() <= 255
        assert codes.min() >= 0

    def test_narrow_width_coarser(self):
        fine = LabEncoding(8)
        coarse = LabEncoding(4)
        lab = np.array([33.3, 12.7, -41.9])
        err_f = np.abs(fine.decode(fine.encode(lab)) - lab).max()
        err_c = np.abs(coarse.decode(coarse.encode(lab)) - lab).max()
        assert err_c > err_f

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            LabEncoding(1)
        with pytest.raises(ConfigurationError):
            LabEncoding(17)

    def test_encode_requires_three_channels(self):
        with pytest.raises(ImageError):
            LabEncoding(8).encode(np.zeros((4, 4)))


class TestHwColorConverter:
    @pytest.fixture(scope="class")
    def converter(self):
        return HwColorConverter()

    def test_codes_shape_and_dtype(self, converter, rgb_image):
        codes = converter.convert_codes(rgb_image)
        assert codes.shape == rgb_image.shape
        assert codes.dtype == np.int64
        assert codes.min() >= 0
        assert codes.max() <= 255

    def test_close_to_reference(self, converter, rgb_image):
        hw = converter.convert(rgb_image)
        ref = rgb_to_lab(rgb_image)
        err = np.abs(hw - ref)
        # L within ~1.5, a/b within ~6 Lab units (8-bit codes + 8-segment
        # PWL); mean error much tighter.
        assert err[..., 0].max() < 2.0
        assert err[..., 1:].max() < 7.0
        assert err.mean() < 1.0

    def test_gray_pixels_have_centered_ab(self, converter):
        grays = np.repeat(
            np.arange(0, 256, 15, dtype=np.uint8)[:, None, None], 3, axis=2
        )
        codes = converter.convert_codes(grays)
        enc = converter.encoding
        assert np.abs(codes[..., 1] - enc.ab_offset).max() <= 2
        assert np.abs(codes[..., 2] - enc.ab_offset).max() <= 2

    def test_l_monotone_in_gray_level(self, converter):
        grays = np.repeat(
            np.arange(256, dtype=np.uint8)[:, None, None], 3, axis=2
        )
        l_codes = converter.convert_codes(grays)[..., 0].ravel()
        assert (np.diff(l_codes) >= 0).all()

    def test_black_and_white_extremes(self, converter):
        bw = np.array([[[0, 0, 0], [255, 255, 255]]], dtype=np.uint8)
        lab = converter.convert(bw)
        assert lab[0, 0, 0] < 2.0       # black: L ~ 0
        assert lab[0, 1, 0] > 97.0      # white: L ~ 100

    def test_narrow_encoding_pipeline(self, rgb_image):
        conv = HwColorConverter(encoding=LabEncoding(6))
        codes = conv.convert_codes(rgb_image)
        assert codes.max() <= 63

    def test_deterministic(self, converter, rgb_image):
        a = converter.convert_codes(rgb_image)
        b = converter.convert_codes(rgb_image)
        assert np.array_equal(a, b)

    def test_rejects_float_image_out_of_range(self, converter):
        with pytest.raises(ImageError):
            converter.convert_codes(np.full((2, 2, 3), 300.0))
