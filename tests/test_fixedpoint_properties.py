"""Property-based tests (hypothesis) for the fixed-point substrate.

These check the algebraic invariants a hardware datapath must satisfy for
*every* input, not just the examples in the unit tests.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fixedpoint import QFormat, rescale, sat_add, sat_mul, sat_square

formats = st.builds(
    QFormat,
    total_bits=st.integers(min_value=4, max_value=16),
    frac_bits=st.integers(min_value=0, max_value=12),
    signed=st.booleans(),
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(fmt=formats, x=finite_floats)
def test_quantize_idempotent(fmt, x):
    """Quantizing twice equals quantizing once (projection property)."""
    once = fmt.quantize(x)
    assert fmt.quantize(once) == once


@given(fmt=formats, x=finite_floats)
def test_quantize_within_range(fmt, x):
    q = fmt.quantize(x)
    assert fmt.min_value - 1e-12 <= q <= fmt.max_value + 1e-12


@given(fmt=formats, x=finite_floats)
def test_quantize_error_bound_inside_range(fmt, x):
    """Inside the representable range, error is at most half an LSB."""
    if fmt.min_value <= x <= fmt.max_value:
        assert abs(fmt.quantize(x) - x) <= fmt.scale / 2 + 1e-12


@given(fmt=formats, x=finite_floats, y=finite_floats)
def test_quantize_monotone(fmt, x, y):
    if x <= y:
        assert fmt.quantize(x) <= fmt.quantize(y)


@given(
    fmt=formats,
    a=st.integers(min_value=-(1 << 15), max_value=1 << 15),
    b=st.integers(min_value=-(1 << 15), max_value=1 << 15),
)
def test_sat_add_commutative_and_bounded(fmt, a, b):
    a = int(fmt.saturate_raw(a))
    b = int(fmt.saturate_raw(b))
    ab = sat_add(a, b, fmt)
    ba = sat_add(b, a, fmt)
    assert ab == ba
    assert fmt.raw_min <= ab <= fmt.raw_max


@given(
    a=st.integers(min_value=-127, max_value=127),
    b=st.integers(min_value=-127, max_value=127),
)
def test_sat_mul_sign_rule(a, b):
    fmt = QFormat(8, 0)
    out = int(sat_mul(a, b, fmt))
    if a * b > 0:
        assert out > 0
    elif a * b < 0:
        assert out < 0
    else:
        assert out == 0


@given(a=st.integers(min_value=-127, max_value=127))
def test_sat_square_nonnegative(a):
    fmt = QFormat(8, 0)
    assert int(sat_square(a, fmt)) >= 0


@given(
    raw=st.integers(min_value=-(1 << 11), max_value=(1 << 11) - 1),
    src_frac=st.integers(min_value=0, max_value=8),
    dst_frac=st.integers(min_value=0, max_value=8),
)
@settings(max_examples=200)
def test_rescale_value_error_bounded(raw, src_frac, dst_frac):
    """Rescaling changes the represented value by at most half a target LSB
    (when no saturation occurs)."""
    src = QFormat(16, src_frac)
    dst = QFormat(16, dst_frac)
    out = int(rescale(raw, src, dst))
    if dst.raw_min < out < dst.raw_max:  # not saturated
        assert abs(dst.from_raw(out) - src.from_raw(raw)) <= dst.scale / 2 + 1e-12


@given(
    raw=st.integers(min_value=-(1 << 10), max_value=(1 << 10) - 1),
    frac=st.integers(min_value=0, max_value=6),
    extra=st.integers(min_value=1, max_value=6),
)
def test_rescale_up_then_down_is_identity(raw, frac, extra):
    src = QFormat(16, frac)
    dst = QFormat(24, frac + extra)
    assert int(rescale(rescale(raw, src, dst), dst, src)) == raw
