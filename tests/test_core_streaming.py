"""Tests for the temporal streaming segmenter."""

import numpy as np
import pytest

from repro.core import SlicParams, StreamSegmenter
from repro.data import SceneConfig, VideoSequence
from repro.errors import ConfigurationError

CFG = SceneConfig(height=80, width=120, n_regions=8, n_disks=1, noise=0.0)
PARAMS = SlicParams(n_superpixels=60, subsample_ratio=0.5, convergence_threshold=0.3)


def _run(motion, n=5, amplitude=3.0, **kw):
    seq = VideoSequence(n, config=CFG, motion=motion, amplitude=amplitude, seed=3)
    seg = StreamSegmenter(PARAMS, **kw)
    results = [seg.process(f.image) for f in seq]
    return seg, results


class TestStreamSegmenter:
    def test_first_frame_cold(self):
        seg, _ = _run("static", n=2)
        assert not seg.history[0].warm_started
        assert seg.history[1].warm_started

    def test_warm_start_reduces_sweeps_on_static_stream(self):
        seg, _ = _run("static", n=4)
        cold = seg.history[0].sweeps
        warm = [h.sweeps for h in seg.history[1:]]
        assert min(warm) < cold

    def test_shake_stream_stays_warm(self):
        seg, _ = _run("shake", n=6)
        assert seg.reanchor_count == 0
        assert all(h.warm_started for h in seg.history[1:])

    def test_pan_stream_reanchors(self):
        seg, _ = _run("pan", n=8, amplitude=4.0)
        assert seg.reanchor_count >= 1
        # Drift resets after each re-anchor.
        drifts = [h.mean_drift_px for h in seg.history]
        assert max(drifts) > 0

    def test_results_valid_every_frame(self):
        seg, results = _run("shake", n=4)
        for r in results:
            assert r.labels.shape == (80, 120)
            assert r.labels.max() < r.n_superpixels

    def test_reset_forces_cold_start(self):
        seq = VideoSequence(3, config=CFG, motion="static", seed=3)
        seg = StreamSegmenter(PARAMS)
        seg.process(seq[0].image)
        seg.reset()
        seg.process(seq[1].image)
        assert not seg.history[1].warm_started

    def test_shape_change_reanchors(self):
        seg = StreamSegmenter(PARAMS)
        seq = VideoSequence(1, config=CFG, seed=3)
        seg.process(seq[0].image)
        other = VideoSequence(
            1, config=SceneConfig(height=64, width=96, n_regions=8, noise=0.0), seed=3
        )
        result = seg.process(other[0].image)
        assert result.labels.shape == (64, 96)
        assert not seg.history[1].warm_started

    def test_mean_sweeps_empty(self):
        assert StreamSegmenter(PARAMS).mean_sweeps == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamSegmenter("not params")
        with pytest.raises(ConfigurationError):
            StreamSegmenter(PARAMS, drift_limit=0.0)
