"""Tests for the temporal streaming segmenter."""

import numpy as np
import pytest

from repro.core import (
    SlicParams,
    StreamSegmenter,
    expected_cluster_count,
    run_segmentation,
)
from repro.data import SceneConfig, VideoSequence
from repro.errors import ConfigurationError, ReproError, StreamError

CFG = SceneConfig(height=80, width=120, n_regions=8, n_disks=1, noise=0.0)
PARAMS = SlicParams(n_superpixels=60, subsample_ratio=0.5, convergence_threshold=0.3)


def _run(motion, n=5, amplitude=3.0, **kw):
    seq = VideoSequence(n, config=CFG, motion=motion, amplitude=amplitude, seed=3)
    seg = StreamSegmenter(PARAMS, **kw)
    results = [seg.process(f.image) for f in seq]
    return seg, results


class TestStreamSegmenter:
    def test_first_frame_cold(self):
        seg, _ = _run("static", n=2)
        assert not seg.history[0].warm_started
        assert seg.history[1].warm_started

    def test_warm_start_reduces_sweeps_on_static_stream(self):
        seg, _ = _run("static", n=4)
        cold = seg.history[0].sweeps
        warm = [h.sweeps for h in seg.history[1:]]
        assert min(warm) < cold

    def test_shake_stream_stays_warm(self):
        seg, _ = _run("shake", n=6)
        assert seg.reanchor_count == 0
        assert all(h.warm_started for h in seg.history[1:])

    def test_pan_stream_reanchors(self):
        seg, _ = _run("pan", n=8, amplitude=4.0)
        assert seg.reanchor_count >= 1
        # Drift resets after each re-anchor.
        drifts = [h.mean_drift_px for h in seg.history]
        assert max(drifts) > 0

    def test_results_valid_every_frame(self):
        seg, results = _run("shake", n=4)
        for r in results:
            assert r.labels.shape == (80, 120)
            assert r.labels.max() < r.n_superpixels

    def test_reset_forces_cold_start(self):
        seq = VideoSequence(3, config=CFG, motion="static", seed=3)
        seg = StreamSegmenter(PARAMS)
        seg.process(seq[0].image)
        seg.reset()
        seg.process(seq[1].image)
        assert not seg.history[1].warm_started

    def test_shape_change_reanchors(self):
        seg = StreamSegmenter(PARAMS)
        seq = VideoSequence(1, config=CFG, seed=3)
        seg.process(seq[0].image)
        other = VideoSequence(
            1, config=SceneConfig(height=64, width=96, n_regions=8, noise=0.0), seed=3
        )
        result = seg.process(other[0].image)
        assert result.labels.shape == (64, 96)
        assert not seg.history[1].warm_started

    def test_mean_sweeps_empty(self):
        assert StreamSegmenter(PARAMS).mean_sweeps == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamSegmenter("not params")
        with pytest.raises(ConfigurationError):
            StreamSegmenter(PARAMS, drift_limit=0.0)


class TestIncrementalConnectivity:
    """The segmenter threads one ConnectivityState through its frames."""

    def test_tiles_resolved_populated_only_with_state(self):
        seg, results = _run("static", n=2)
        for r in results:
            assert isinstance(r.tiles_resolved, int)
            assert r.tiles_resolved >= 0
        seq = VideoSequence(1, config=CFG, motion="static", seed=3)
        assert run_segmentation(seq[0].image, PARAMS).tiles_resolved is None

    def test_state_is_a_pure_cache_bit_identical(self):
        # Forcing a cold connectivity resolve on every frame must not
        # change a single label — the state is a cache, not an input.
        seq = VideoSequence(4, config=CFG, motion="shake", seed=3)
        warm = StreamSegmenter(PARAMS)
        cold = StreamSegmenter(PARAMS)
        for frame in seq:
            a = warm.process(frame.image)
            cold._conn_state.reset()  # evict before every frame
            b = cold.process(frame.image)
            assert np.array_equal(a.labels, b.labels)
            assert np.array_equal(a.centers, b.centers)

    def test_repeated_warm_frame_resolves_zero_tiles(self):
        # Identical image + identical warm state => identical
        # pre-connectivity labels => the second call proves every band
        # clean and replays the cached output without resolving a tile.
        from repro.core.connectivity import ConnectivityState

        img = VideoSequence(1, config=CFG, motion="static", seed=3)[0].image
        cold = run_segmentation(img, PARAMS)
        state = ConnectivityState(band_rows=16)
        kwargs = dict(
            warm_centers=cold.centers,
            warm_labels=cold.labels,
            connectivity_state=state,
        )
        first = run_segmentation(img, PARAMS, **kwargs)
        assert first.tiles_resolved == state.tiles_total  # cold cache
        second = run_segmentation(img, PARAMS, **kwargs)
        assert second.tiles_resolved == 0  # strictly fewer than cold
        assert np.array_equal(first.labels, second.labels)


class TestWarmStartEdgeCases:
    """ISSUE-2 satellite: the inputs that used to die in numpy must now
    either re-anchor cleanly or raise a repro.errors error."""

    def _frame(self, height=80, width=120, seed=3):
        cfg = SceneConfig(height=height, width=width, n_regions=8, noise=0.0)
        return VideoSequence(1, config=cfg, motion="static", seed=seed)[0].image

    def test_first_frame_plan_is_cold(self):
        seg = StreamSegmenter(PARAMS)
        plan = seg.plan((80, 120))
        assert not plan.warm
        assert not plan.reanchor  # nothing to re-anchor *from*
        assert plan.warm_centers is None and plan.warm_labels is None
        assert plan.mean_drift_px == 0.0
        assert plan.frame_index == 0

    def test_first_frame_not_counted_as_reanchor(self):
        seg = StreamSegmenter(PARAMS)
        seg.process(self._frame())
        assert seg.reanchor_count == 0
        assert not seg.history[0].warm_started

    def test_plan_is_pure(self):
        """plan() must not advance state — two calls, same answer."""
        seg = StreamSegmenter(PARAMS)
        seg.process(self._frame())
        a = seg.plan((80, 120))
        b = seg.plan((80, 120))
        assert a.warm and b.warm
        assert a.frame_index == b.frame_index == 1
        assert np.array_equal(a.warm_centers, b.warm_centers)

    def test_k_mismatch_between_frames_reanchors(self):
        """Changing K mid-stream invalidates stored centers; the next
        plan must cold-start instead of feeding a wrong-K array to the
        engine (which would raise deep inside)."""
        seg = StreamSegmenter(PARAMS)
        seg.process(self._frame())
        seg.params = PARAMS.with_(n_superpixels=24)
        plan = seg.plan((80, 120))
        assert plan.reanchor and not plan.warm
        result = run_segmentation(self._frame(), seg.params)
        seg.commit(plan, result)
        assert seg.history[1].reanchored
        # The chain recovers: same-K frames warm-start again.
        assert seg.plan((80, 120)).warm

    def test_resolution_change_strict_raises_stream_error(self):
        seg = StreamSegmenter(PARAMS, strict_shape=True)
        seg.process(self._frame())
        with pytest.raises(StreamError) as exc:
            seg.plan((64, 96))
        msg = str(exc.value)
        assert "resolution" in msg and "(64, 96)" in msg and "(80, 120)" in msg

    def test_stream_error_is_a_repro_error(self):
        assert issubclass(StreamError, ReproError)
        from repro import StreamError as top_level

        assert top_level is StreamError

    def test_resolution_change_default_reanchors_not_broadcasts(self):
        """Non-strict mode: a resolution change silently re-anchors —
        no numpy broadcast error from stale centers/labels."""
        seg = StreamSegmenter(PARAMS)
        seg.process(self._frame())
        result = seg.process(self._frame(height=64, width=96))
        assert result.labels.shape == (64, 96)
        assert seg.history[1].reanchored
        assert not seg.history[1].warm_started

    def test_strict_segmenter_recovers_after_reset(self):
        seg = StreamSegmenter(PARAMS, strict_shape=True)
        seg.process(self._frame())
        with pytest.raises(StreamError):
            seg.plan((64, 96))
        seg.reset()
        result = seg.process(self._frame(height=64, width=96))
        assert result.labels.shape == (64, 96)

    def test_engine_rejects_wrong_k_warm_centers(self):
        """The engine-level guard behind the K-mismatch plan rule: a
        warm_centers array of the wrong grid-realized K raises a clear
        ConfigurationError, not a numpy shape error."""
        frame = self._frame()
        good = run_segmentation(frame, PARAMS)
        bad_k = expected_cluster_count(frame.shape, PARAMS.n_superpixels) + 3
        with pytest.raises(ConfigurationError) as exc:
            run_segmentation(
                frame, PARAMS, warm_centers=good.centers[: len(good.centers) - 2]
            )
        assert "grid-realized" in str(exc.value)
        assert bad_k != len(good.centers)
