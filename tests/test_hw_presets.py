"""Consistency tests on the paper-value registry itself.

The presets are transcribed from the paper; these tests check their
*internal* arithmetic (energy = power x time, fps = 1000/latency, the
normalization factor) so a transcription typo cannot silently skew every
"paper vs measured" comparison built on them.
"""

import pytest

from repro.hw import (
    PAPER_FIG6_BUFFERS_KB,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    REAL_TIME_MS,
    table4_configs,
)


class TestTable3Internal:
    @pytest.mark.parametrize("label", list(PAPER_TABLE3))
    def test_energy_equals_power_times_time(self, label):
        row = PAPER_TABLE3[label]
        # mW * ms = uJ; the paper's rows close to within its rounding.
        assert row["power_mw"] * row["time_ms"] == pytest.approx(
            row["energy_uj"], rel=0.05
        )

    def test_throughput_latency_relation(self):
        # 1/9-throughput configs share the 11.8 ms iteration time; the
        # 1 px/cyc config is 9x faster.
        times = {row["throughput"]: row["time_ms"] for row in PAPER_TABLE3.values()}
        assert times[1 / 9] / times[1.0] == pytest.approx(9.0, rel=0.02)


class TestTable4Internal:
    @pytest.mark.parametrize("name", list(PAPER_TABLE4))
    def test_fps_consistent_with_latency(self, name):
        row = PAPER_TABLE4[name]
        assert 1000.0 / row["latency_ms"] == pytest.approx(row["fps"], rel=0.01)

    @pytest.mark.parametrize("name", list(PAPER_TABLE4))
    def test_energy_consistent_with_power(self, name):
        row = PAPER_TABLE4[name]
        assert row["power_mw"] * row["latency_ms"] * 1e-3 == pytest.approx(
            row["energy_mj"], rel=0.03
        )

    @pytest.mark.parametrize("name", list(PAPER_TABLE4))
    def test_perf_per_area_consistent(self, name):
        row = PAPER_TABLE4[name]
        assert row["fps"] / row["area_mm2"] == pytest.approx(
            row["perf_per_area"], rel=0.01
        )

    def test_all_rows_real_time(self):
        for row in PAPER_TABLE4.values():
            assert row["latency_ms"] < REAL_TIME_MS

    def test_configs_match_published_buffers(self):
        for name, cfg in table4_configs().items():
            assert cfg.buffer_kb_per_channel == PAPER_TABLE4[name]["buffer_kb"]


class TestTable5Internal:
    def test_normalized_energy_is_power_times_latency(self):
        for row in PAPER_TABLE5.values():
            assert row["norm_power_w"] * row["latency_ms"] == pytest.approx(
                row["energy_mj_norm"], rel=0.03
            )

    def test_gpu_normalization_factor_is_2p2(self):
        for name in ("Tesla K20", "TK1"):
            row = PAPER_TABLE5[name]
            assert row["avg_power_w"] / row["norm_power_w"] == pytest.approx(
                2.2, rel=0.02
            )

    def test_headline_ratios(self):
        accel = PAPER_TABLE5["This Work"]["energy_mj_norm"]
        assert PAPER_TABLE5["Tesla K20"]["energy_mj_norm"] / accel > 500
        assert PAPER_TABLE5["TK1"]["energy_mj_norm"] / accel > 250


class TestTable1Internal:
    @pytest.mark.parametrize("algo", list(PAPER_TABLE1))
    def test_percentages_sum_to_100(self, algo):
        assert sum(PAPER_TABLE1[algo].values()) == pytest.approx(100.0, abs=0.1)


class TestFig6Axis:
    def test_power_of_two_sweep(self):
        kbs = list(PAPER_FIG6_BUFFERS_KB)
        assert kbs == sorted(kbs)
        for a, b in zip(kbs, kbs[1:]):
            assert b == 2 * a
