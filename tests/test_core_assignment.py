"""Unit tests for the CPA / PPA assignment passes."""

import numpy as np
import pytest

from repro.color import rgb_to_lab
from repro.core import (
    FixedDatapath,
    candidate_map,
    grid_geometry,
    initial_centers,
    spatial_weight,
    tile_map,
)
from repro.core.assignment import PixelArrays, assign_cpa, assign_ppa


@pytest.fixture(scope="module")
def setup(small_scene):
    lab = rgb_to_lab(small_scene.image)
    h, w = lab.shape[:2]
    k = 24
    centers = initial_centers(lab, k)
    gh, gw, _, _ = grid_geometry((h, w), k)
    tiles = tile_map((h, w), gh, gw)
    cands = candidate_map(gh, gw)
    s = float(np.sqrt(h * w / len(centers)))
    weight = spatial_weight(10.0, s)
    return lab, centers, tiles, cands, s, weight


class TestAssignPpa:
    def test_labels_come_from_candidates(self, setup):
        lab, centers, tiles, cands, s, weight = setup
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(pixels.n_pixels)
        chosen = assign_ppa(pixels, idx, cands, centers, weight)
        allowed = cands[pixels.tile_flat]
        assert all(
            chosen[i] in allowed[i] for i in range(0, len(idx), 97)
        )

    def test_subset_assignment_matches_full(self, setup):
        """Assigning a subset gives the same labels as the corresponding
        rows of a full assignment (pure function of pixel + centers)."""
        lab, centers, tiles, cands, s, weight = setup
        pixels = PixelArrays(lab, tiles)
        all_idx = np.arange(pixels.n_pixels)
        full = assign_ppa(pixels, all_idx, cands, centers, weight)
        sub_idx = all_idx[::3]
        sub = assign_ppa(pixels, sub_idx, cands, centers, weight)
        assert np.array_equal(sub, full[::3])

    def test_chunking_invariance(self, setup, monkeypatch):
        lab, centers, tiles, cands, s, weight = setup
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(pixels.n_pixels)
        a = assign_ppa(pixels, idx, cands, centers, weight)
        import repro.core.assignment as mod

        monkeypatch.setattr(mod, "_PPA_CHUNK", 1000)
        b = assign_ppa(pixels, idx, cands, centers, weight)
        assert np.array_equal(a, b)

    def test_minimizes_over_candidates(self, setup):
        """Each chosen candidate actually has minimal distance."""
        lab, centers, tiles, cands, s, weight = setup
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(0, pixels.n_pixels, 53)
        chosen = assign_ppa(pixels, idx, cands, centers, weight)
        for j, i in enumerate(idx):
            cand = cands[pixels.tile_flat[i]]
            px_lab = pixels.lab_flat[i]
            px_xy = np.array([pixels.x_flat[i], pixels.y_flat[i]], dtype=float)
            d2 = ((centers[cand, 0:3] - px_lab) ** 2).sum(1) + weight * (
                (centers[cand, 3:5] - px_xy) ** 2
            ).sum(1)
            assert d2[list(cand).index(chosen[j])] <= d2.min() + 1e-9

    def test_fixed_datapath_path_runs(self, setup):
        lab, centers, tiles, cands, s, weight = setup
        dp = FixedDatapath(bits=8)
        pixels = PixelArrays(lab, tiles, datapath=dp)
        idx = np.arange(pixels.n_pixels)
        chosen = assign_ppa(
            pixels, idx, cands, centers, weight, compactness=10.0, grid_s=s
        )
        assert chosen.shape == idx.shape
        # Fixed and float paths agree for the overwhelming majority.
        float_pixels = PixelArrays(lab, tiles)
        ref = assign_ppa(float_pixels, idx, cands, centers, weight)
        assert (chosen == ref).mean() > 0.9

    def test_values5_decodes_codes(self, setup):
        lab, centers, tiles, cands, s, weight = setup
        dp = FixedDatapath(bits=8)
        pixels = PixelArrays(lab, tiles, datapath=dp)
        vals = pixels.values5(np.array([0, 10, 100]))
        assert vals.shape == (3, 5)
        # Color fields reflect the quantized (not raw float) Lab.
        assert np.abs(vals[:, 0:3] - lab.reshape(-1, 3)[[0, 10, 100]]).max() <= 1.0


class TestAssignCpa:
    def test_full_scan_assigns_everything(self, setup):
        lab, centers, tiles, cands, s, weight = setup
        h, w = lab.shape[:2]
        dist = np.full((h, w), np.inf)
        labels = tiles.astype(np.int32).copy()
        assign_cpa(lab, centers, weight, s, dist, labels)
        assert np.isfinite(dist).all()
        assert labels.min() >= 0
        assert labels.max() < len(centers)

    def test_agrees_with_ppa_on_grid_init(self, setup):
        """Right after grid initialization, CPA and PPA must produce the
        same assignment wherever CPA's window covers the PPA winner (the
        9-candidate set contains the true nearest center on a grid)."""
        lab, centers, tiles, cands, s, weight = setup
        h, w = lab.shape[:2]
        dist = np.full((h, w), np.inf)
        labels_cpa = tiles.astype(np.int32).copy()
        assign_cpa(lab, centers, weight, s, dist, labels_cpa)
        pixels = PixelArrays(lab, tiles)
        labels_ppa = assign_ppa(
            pixels, np.arange(pixels.n_pixels), cands, centers, weight
        ).reshape(h, w)
        agreement = (labels_cpa == labels_ppa).mean()
        # Not 1.0: with the paper's 2S x 2S window a pixel whose nearest
        # center is a *diagonal* grid neighbor (up to ~1.5S away on one
        # axis) falls outside that center's scan, so CPA keeps its
        # second-best — PPA's 9-candidate set still sees the winner.
        assert agreement > 0.97

    def test_scan_extent_is_2s_by_2s(self):
        """Regression pin for the paper's 2S x 2S window (Section 2,
        Figure 1a): a pixel just beyond ceil(S) of a center's integer
        position must be unreachable in one scan. The seed implementation
        scanned ceil(2S) each side, which would have claimed it."""
        h, w = 40, 64
        lab = np.zeros((h, w, 3))
        s = 5.0
        half = int(np.ceil(s))
        centers = np.array([[0.0, 0.0, 0.0, 30.3, 20.7]])
        fx, fy = 30, 20
        dist = np.full((h, w), np.inf)
        labels = np.full((h, w), -1, dtype=np.int32)
        n = assign_cpa(lab, centers, 1.0, s, dist, labels)
        touched = labels != -1
        ys, xs = np.nonzero(touched)
        assert xs.min() == fx - half and xs.max() == fx + half
        assert ys.min() == fy - half and ys.max() == fy + half
        # Just beyond the window on each axis: unreachable in one scan.
        assert not touched[fy, fx + half + 1]
        assert not touched[fy + half + 1, fx]
        # Inside S < distance <= 2S (reachable under the old 4S x 4S
        # deviation): must stay unassigned.
        assert not touched[fy, fx + 2 * half]
        assert n == int(touched.sum()) == (2 * half + 1) ** 2

    def test_cluster_subset_only_affects_windows(self, setup):
        lab, centers, tiles, cands, s, weight = setup
        h, w = lab.shape[:2]
        dist = np.full((h, w), np.inf)
        labels = np.full((h, w), -1, dtype=np.int32)
        assign_cpa(lab, centers, weight, s, dist, labels, cluster_indices=np.array([0]))
        touched = labels != -1
        assert touched.any()
        # Touched region confined to cluster 0's window.
        ys, xs = np.nonzero(touched)
        assert xs.max() <= centers[0, 3] + 2 * s + 1
        assert ys.max() <= centers[0, 4] + 2 * s + 1

    def test_fixed_datapath_cpa(self, setup):
        lab, centers, tiles, cands, s, weight = setup
        dp = FixedDatapath(bits=8)
        codes = dp.encode_image(lab)
        h, w = lab.shape[:2]
        dist = np.full((h, w), np.iinfo(np.int64).max, dtype=np.int64)
        labels = tiles.astype(np.int32).copy()
        assign_cpa(
            lab, centers, weight, s, dist, labels,
            datapath=dp, compactness=10.0, codes=codes,
        )
        assert labels.max() < len(centers)
