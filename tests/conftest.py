"""Shared fixtures: small deterministic scenes and images.

Session-scoped where generation is expensive; tests must not mutate
fixture arrays (copy first).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SceneConfig, generate_scene


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "Regenerate tests/golden/*.json fixtures from the current "
            "implementation instead of comparing against them. Inspect "
            "the diff before committing — a changed hash means changed "
            "segmentation output."
        ),
    )


@pytest.fixture(scope="session")
def update_golden(request):
    """True when the run should rewrite golden fixtures."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def small_scene():
    """A 64x96 scene with clear regions — fast, easy workload."""
    return generate_scene(
        SceneConfig(height=64, width=96, n_regions=8, n_disks=2), seed=42
    )


@pytest.fixture(scope="session")
def hard_scene():
    """A harder scene: soft edges, texture, noise (metric dynamics)."""
    return generate_scene(
        SceneConfig(
            height=80,
            width=120,
            n_regions=10,
            n_disks=2,
            texture=4.0,
            noise=2.0,
            blur_sigma=1.2,
            min_color_separation=10.0,
        ),
        seed=13,
    )


@pytest.fixture(scope="session")
def rgb_image(small_scene):
    """A uint8 RGB image (the small scene's frame)."""
    return small_scene.image


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
