"""Unit tests for PPM/PGM I/O and the BSDS .seg parser."""

import numpy as np
import pytest

from repro.data import (
    parse_seg_file,
    read_pgm,
    read_ppm,
    write_pgm,
    write_ppm,
)
from repro.data.bsds import load_bsds_pairs
from repro.errors import DatasetError


class TestPpm:
    def test_roundtrip(self, tmp_path, rgb_image):
        path = tmp_path / "img.ppm"
        write_ppm(path, rgb_image)
        back = read_ppm(path)
        assert np.array_equal(back, rgb_image)

    def test_rejects_wrong_dtype(self, tmp_path):
        with pytest.raises(DatasetError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4, 3), dtype=np.float64))

    def test_rejects_wrong_shape(self, tmp_path):
        with pytest.raises(DatasetError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4), dtype=np.uint8))

    def test_read_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"P3\n2 2\n255\n" + b"0" * 12)
        with pytest.raises(DatasetError):
            read_ppm(path)

    def test_read_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.ppm"
        path.write_bytes(b"P6\n4 4\n255\n" + b"\x00" * 10)
        with pytest.raises(DatasetError):
            read_ppm(path)

    def test_header_with_comment(self, tmp_path):
        path = tmp_path / "c.ppm"
        path.write_bytes(b"P6\n# a comment\n2 1\n255\n" + bytes([1, 2, 3, 4, 5, 6]))
        img = read_ppm(path)
        assert img.shape == (1, 2, 3)
        assert img[0, 0, 0] == 1


class TestPgm:
    def test_roundtrip(self, tmp_path, rng):
        img = rng.integers(0, 256, (12, 17), dtype=np.uint8)
        path = tmp_path / "g.pgm"
        write_pgm(path, img)
        assert np.array_equal(read_pgm(path), img)

    def test_rejects_color_image(self, tmp_path):
        with pytest.raises(DatasetError):
            write_pgm(tmp_path / "x.pgm", np.zeros((4, 4, 3), dtype=np.uint8))


def _write_seg(path, labels):
    """Write a label map in the BSDS .seg run-length format."""
    h, w = labels.shape
    lines = ["format ascii cr", f"width {w}", f"height {h}",
             f"segments {labels.max() + 1}", "data"]
    for row in range(h):
        col = 0
        while col < w:
            seg = labels[row, col]
            end = col
            while end + 1 < w and labels[row, end + 1] == seg:
                end += 1
            lines.append(f"{seg} {row} {col} {end}")
            col = end + 1
    path.write_text("\n".join(lines) + "\n")


class TestSegParser:
    def test_roundtrip(self, tmp_path, rng):
        labels = rng.integers(0, 4, (6, 9)).astype(np.int32)
        path = tmp_path / "a.seg"
        _write_seg(path, labels)
        assert np.array_equal(parse_seg_file(path), labels)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "b.seg"
        path.write_text("data\n0 0 0 1\n")
        with pytest.raises(DatasetError):
            parse_seg_file(path)

    def test_rejects_uncovered_pixels(self, tmp_path):
        path = tmp_path / "c.seg"
        path.write_text("width 4\nheight 2\ndata\n0 0 0 3\n")  # row 1 missing
        with pytest.raises(DatasetError):
            parse_seg_file(path)

    def test_rejects_out_of_bounds_run(self, tmp_path):
        path = tmp_path / "d.seg"
        path.write_text("width 4\nheight 1\ndata\n0 0 0 9\n")
        with pytest.raises(DatasetError):
            parse_seg_file(path)


class TestBsdsLoader:
    def test_pairs_by_stem(self, tmp_path, rng):
        images = tmp_path / "images"
        segs = tmp_path / "segs"
        images.mkdir()
        segs.mkdir()
        img = rng.integers(0, 256, (5, 7, 3), dtype=np.uint8)
        write_ppm(images / "100.ppm", img)
        labels = rng.integers(0, 3, (5, 7)).astype(np.int32)
        _write_seg(segs / "100.seg", labels)
        write_ppm(images / "200.ppm", img)  # no seg -> skipped
        samples = list(load_bsds_pairs(images, segs))
        assert len(samples) == 1
        assert samples[0].image_id == "100"
        assert np.array_equal(samples[0].gt_labels, labels)

    def test_shape_mismatch_rejected(self, tmp_path, rng):
        images = tmp_path / "images"
        segs = tmp_path / "segs"
        images.mkdir()
        segs.mkdir()
        write_ppm(images / "1.ppm", rng.integers(0, 256, (5, 7, 3), dtype=np.uint8))
        _write_seg(segs / "1.seg", np.zeros((3, 3), dtype=np.int32))
        with pytest.raises(DatasetError):
            list(load_bsds_pairs(images, segs))

    def test_missing_dirs_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            list(load_bsds_pairs(tmp_path / "no", tmp_path / "no2"))
