"""Unit tests for the noise/texture/blur primitives."""

import numpy as np
import pytest

from repro.data import linear_gradient, multi_octave_noise, value_noise
from repro.data.texture import gaussian_blur
from repro.errors import DatasetError


class TestValueNoise:
    def test_shape_and_range(self, rng):
        n = value_noise((32, 48), 4, rng)
        assert n.shape == (32, 48)
        assert n.min() >= -1.0 - 1e-9
        assert n.max() <= 1.0 + 1e-9

    def test_low_frequency_is_smooth(self, rng):
        n = value_noise((64, 64), 2, rng)
        # Adjacent-pixel differences must be small for a 2-cell grid.
        assert np.abs(np.diff(n, axis=0)).max() < 0.2

    def test_higher_cells_higher_frequency(self, rng):
        lo = value_noise((64, 64), 2, np.random.default_rng(0))
        hi = value_noise((64, 64), 16, np.random.default_rng(0))
        grad = lambda a: np.abs(np.diff(a, axis=1)).mean()
        assert grad(hi) > grad(lo)

    def test_rejects_zero_cells(self, rng):
        with pytest.raises(DatasetError):
            value_noise((16, 16), 0, rng)


class TestMultiOctave:
    def test_normalized_range(self, rng):
        n = multi_octave_noise((40, 40), rng, octaves=3)
        assert n.min() >= -1.0 - 1e-9
        assert n.max() <= 1.0 + 1e-9

    def test_single_octave_equals_value_noise_statistics(self):
        n1 = multi_octave_noise((64, 64), np.random.default_rng(3), base_cells=4, octaves=1)
        n2 = value_noise((64, 64), 4, np.random.default_rng(3))
        assert np.allclose(n1, n2)

    def test_rejects_zero_octaves(self, rng):
        with pytest.raises(DatasetError):
            multi_octave_noise((16, 16), rng, octaves=0)


class TestLinearGradient:
    def test_range_matches_strength(self, rng):
        g = linear_gradient((40, 60), rng, strength=5.0)
        assert g.max() == pytest.approx(5.0, abs=1e-9) or g.min() == pytest.approx(-5.0, abs=1e-9)
        assert np.abs(g).max() <= 5.0 + 1e-9

    def test_is_planar(self, rng):
        """Second differences along both axes vanish for a linear field."""
        g = linear_gradient((30, 30), rng)
        assert np.abs(np.diff(g, n=2, axis=0)).max() < 1e-9
        assert np.abs(np.diff(g, n=2, axis=1)).max() < 1e-9


class TestGaussianBlur:
    def test_zero_sigma_identity(self, rng):
        img = rng.uniform(0, 1, (20, 30))
        assert np.array_equal(gaussian_blur(img, 0.0), img)

    def test_preserves_mean_of_constant(self):
        img = np.full((20, 20), 7.0)
        out = gaussian_blur(img, 2.0)
        assert np.allclose(out, 7.0)

    def test_reduces_gradient_energy(self, rng):
        img = rng.uniform(0, 1, (32, 32))
        out = gaussian_blur(img, 1.5)
        assert np.abs(np.diff(out)).sum() < np.abs(np.diff(img)).sum()

    def test_multichannel(self, rng):
        img = rng.uniform(0, 1, (16, 16, 3))
        out = gaussian_blur(img, 1.0)
        assert out.shape == img.shape

    def test_step_edge_becomes_ramp(self):
        img = np.zeros((8, 40))
        img[:, 20:] = 1.0
        out = gaussian_blur(img, 2.0)
        # The transition now spans multiple pixels.
        row = out[4]
        mid = np.flatnonzero((row > 0.1) & (row < 0.9))
        assert len(mid) >= 4
