"""Extension: cycle-level simulation and the double-buffering what-if.

Cross-validates the calibrated analytical model against an independent
discrete simulation of the microarchitecture (pipeline reservation for the
Cluster Update Unit, tile-by-tile FSM with a latency/bandwidth DRAM), then
quantifies a design improvement the paper does not explore: the FSM it
describes is serial (load tile, then process it); a double-buffered FSM
would hide most per-tile DRAM latency.
"""

from repro.analysis import render_table
from repro.hw import (
    AcceleratorModel,
    AcceleratorSim,
    ClusterUnitSim,
    TABLE3_WAYS,
    schedule_cluster_unit,
    table4_configs,
)


def test_cyclesim_validation_and_prefetch_whatif(benchmark, emit):
    def run():
        unit_rows = []
        for ways in TABLE3_WAYS:
            trace = ClusterUnitSim(ways).run(10_000)
            sched = schedule_cluster_unit(ways)
            unit_rows.append(
                [
                    ways.label,
                    f"{trace.pixels_per_cycle:.3f}",
                    f"{sched.throughput_pixels_per_cycle:.3f}",
                    trace.first_result_cycle,
                    sched.latency,
                    " / ".join(
                        f"{k[:4]} {100 * v:.0f}%" for k, v in trace.utilization.items()
                    ),
                ]
            )
        frame_rows = []
        for name, cfg in table4_configs().items():
            serial = AcceleratorSim(cfg).run_frame().total_ms()
            prefetch = AcceleratorSim(cfg, prefetch=True).run_frame().total_ms()
            model = AcceleratorModel(cfg).report().latency_ms
            frame_rows.append(
                [name, f"{model:.1f}", f"{serial:.1f}", f"{prefetch:.1f}",
                 f"{1000 / prefetch:.1f}"]
            )
        return unit_rows, frame_rows

    unit_rows, frame_rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["config", "sim px/cyc", "model px/cyc", "sim latency", "model latency",
         "unit utilization"],
        unit_rows,
        title="Cluster Update Unit: cycle simulation vs analytical schedule",
    )
    text += "\n" + render_table(
        ["resolution", "analytical ms", "serial-FSM sim ms",
         "double-buffered sim ms", "double-buffered fps"],
        frame_rows,
        title="Frame latency: the serial FSM the paper describes vs a "
              "double-buffered what-if",
    )
    emit("ext_cyclesim", text)

    # Cross-validation invariants.
    for row in unit_rows:
        assert row[3] == row[4]  # latency exact
    for row in frame_rows:
        assert abs(float(row[1]) - float(row[2])) < 0.03 * float(row[1])
        assert float(row[3]) < float(row[2])
