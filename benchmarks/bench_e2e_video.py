"""End-to-end video throughput: serial vs pickle-pool vs shm-pool (ISSUE 5).

Runs warm-started synthetic video through the full pipeline at VGA and
1080p under three configurations — serial, 4-worker pickle transport,
4-worker shared-memory transport — and records frames/sec plus the
per-phase time breakdown for each. The rows land in two artifacts:

* ``benchmarks/output/bench_e2e_video.{txt,jsonl}`` via the shared
  ``emit`` fixture (like every other bench), and
* ``BENCH_e2e.json`` at the repo root — the committed perf trajectory
  the ISSUE asks for, so throughput regressions show up in review.

The hard gate — 4-worker shm must be >= 1.3x faster than 4-worker
pickle at 1080p, where frame payloads are large enough for transport
cost to dominate — only asserts when the machine exposes >= 4 cores;
below that the pool is time-sliced on too few cores for transport to be
the bottleneck and the numbers are recorded without the assertion.

Since the native-mt PR a fourth configuration rides along:
``native-mt-1p`` — one process, the threaded C backend fanning each
frame over 4 in-process threads ("one process per stream, threads per
frame"). Its gate: at 1080p on >= 4 cores it must beat both the serial
native run *and* the 4-worker shm pool, because it parallelizes the
same arithmetic with zero transport cost. On smaller machines the rows
are recorded and the gate reports skipped, like the shm gate.

Since the fused-color/sigma-kernel PR two more gates ride along, read
against the committed artifact the same way:

* **fused_sigma** — the serial 1080p ``center_update`` +
  ``color_conversion`` combined phase time must drop to half the
  committed number (the fused conversion and the one-pass sigma kernel
  exist to kill exactly those two serial leaders). Anti-ratcheted like
  the connectivity gate: once the post-fusion artifact is committed the
  jump is banked.
* **e2e_2x** — serial 1080p fps must reach 2x the frozen pre-CCL
  baseline (0.2597 fps, recorded before the CCL kernel landed) — the
  ROADMAP's end-to-end goal, an absolute target rather than a ratchet.

A second budget rides along since the telemetry PR: per-span resource
profiling (``--profile-spans``) must cost **<= 5% wall time** on a
traced VGA serial run. Both the profiled and unprofiled configurations
take the best of two runs so a one-off scheduler hiccup cannot fail the
gate, and the measured overhead lands in ``BENCH_e2e.json`` under
``profiling``.

Since the CCL-kernel PR a third gate rides along: the committed
baseline's 1080p serial run spent 6.3s of 15.4s in connectivity
enforcement, and the native two-pass union-find kernel plus incremental
video connectivity exist to kill exactly that. The gate reads the
**committed** ``BENCH_e2e.json`` *before* overwriting it and requires
1080p serial fps >= 2x the committed number — but only when the
baseline predates the CCL kernel (no ``connectivity`` gate block yet):
once the post-kernel artifact is committed the 2x jump is banked and
further drift is the regress sentinel's job, not a ratchet that doubles
every run. Like the other gates it records its numbers everywhere and
asserts only on >= 4 cores with a same-core-count baseline.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core import SlicParams
from repro.kernels import available_backends
from repro.obs import MemorySink, Tracer
from repro.obs.regress import BENCH_SCHEMA_VERSION
from repro.parallel import ParallelRunner, shm_available, synthetic_streams

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_e2e.json"

SPEEDUP_FLOOR = 1.3
GATE_WORKERS = 4
GATE_RESOLUTION = "1080p"

#: The CCL-kernel PR must at least double committed 1080p serial
#: throughput (connectivity was 41% of the serial frame budget).
CONNECTIVITY_SPEEDUP_FLOOR = 2.0

#: Per-span profiling may add at most this fraction of wall time to a
#: traced VGA serial run (the repro.obs.profile budget).
PROFILING_OVERHEAD_CEILING = 0.05

#: The fused color path + one-pass sigma kernel must at least halve the
#: committed serial 1080p center_update + color_conversion time.
FUSED_PHASE_SPEEDUP_FLOOR = 2.0

#: Serial 1080p fps recorded immediately before the CCL kernel landed —
#: the frozen denominator of the ROADMAP's "2x end-to-end" goal.
PRE_CCL_BASELINE_FPS = 0.2597

#: End-to-end target: serial 1080p must reach this multiple of the
#: frozen pre-CCL baseline.
E2E_SPEEDUP_FLOOR = 2.0

#: The two serial phases the fused/sigma kernels attack.
FUSED_GATE_PHASES = ("center_update", "color_conversion")

RESOLUTIONS = {
    "vga": (480, 640),
    "1080p": (1080, 1920),
}

CONFIGS = (
    # (label, n_workers, transport, kernel_backend, n_threads)
    ("serial", 1, "pickle", None, None),
    ("pickle-4w", GATE_WORKERS, "pickle", None, None),
    ("shm-4w", GATE_WORKERS, "shm", None, None),
    # One process, threads per frame: the in-process threaded backend
    # against the process pools it is meant to beat.
    ("native-mt-1p", 1, "pickle", "native-mt", GATE_WORKERS),
)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _profiling_overhead(params, bench_scale) -> dict:
    """Measure the wall-time cost of per-span resource profiling.

    Runs the same traced VGA serial workload with profiling off and on,
    best of two each (back-to-back, so thermal/cache state is shared),
    and reports the relative overhead. Uses in-memory sinks so disk I/O
    does not pollute the comparison.
    """
    n_streams, n_frames = {"quick": (2, 3), "full": (4, 6)}[bench_scale]
    height, width = RESOLUTIONS["vga"]

    def run_once(profile: bool) -> float:
        tracer = Tracer(MemorySink(), profile=profile)
        runner = ParallelRunner(
            params, n_workers=1, tracer=tracer, collect_worker_traces=True
        )
        streams = synthetic_streams(
            n_streams, n_frames, height=height, width=width, seed=11
        )
        start = time.perf_counter()
        result = runner.run_streams(streams)
        elapsed = time.perf_counter() - start
        assert result.n_failed == 0
        tracer.close()
        return elapsed

    run_once(False)  # warm caches/imports outside the timed pairs
    plain = min(run_once(False) for _ in range(2))
    profiled = min(run_once(True) for _ in range(2))
    overhead = (profiled - plain) / plain if plain > 0 else 0.0
    return {
        "workload": f"vga serial, {n_streams}x{n_frames} frames, traced",
        "plain_elapsed_s": round(plain, 4),
        "profiled_elapsed_s": round(profiled, 4),
        "overhead_pct": round(max(0.0, overhead) * 100.0, 2),
        "budget_pct": PROFILING_OVERHEAD_CEILING * 100.0,
    }


def _committed_baseline() -> dict:
    """The committed ``BENCH_e2e.json``, read before this run overwrites it.

    Returns ``{}`` when the artifact is absent or unreadable (a fresh
    clone, or a hand-truncated file) — the connectivity gate then skips
    rather than inventing a baseline.
    """
    try:
        payload = json.loads(BENCH_JSON.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    return payload if isinstance(payload, dict) else {}


def _phase_breakdown(records) -> dict:
    """Aggregate per-phase engine seconds across a run's frame records."""
    totals = {}
    for rec in records:
        for phase, seconds in rec.result.timings.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return {k: round(v, 4) for k, v in sorted(totals.items())}


def test_e2e_video_throughput(emit, bench_scale, bench_trace_id):
    # Per-resolution (n_streams, n_frames): enough frames for warm-start
    # chains to matter, few enough that 1080p stays CI-tolerable.
    shape = {
        "quick": {"vga": (2, 3), "1080p": (2, 2)},
        "full": {"vga": (4, 6), "1080p": (4, 3)},
    }[bench_scale]
    params = SlicParams(
        n_superpixels=200,
        max_iterations=3,
        subsample_ratio=0.25,
        convergence_threshold=0.0,  # fixed work per frame -> fair timing
    )

    cores = _available_cores()
    backends = available_backends()
    baseline = _committed_baseline()  # before this run overwrites it
    rows = []
    for res_name, (height, width) in RESOLUTIONS.items():
        n_streams, n_frames = shape[res_name]
        total_frames = n_streams * n_frames
        for label, workers, transport, backend, n_threads in CONFIGS:
            if backend is not None and backend not in backends:
                continue  # no C compiler: record nothing, gate skips
            cfg_params = params
            if backend is not None:
                cfg_params = params.with_(kernel_backend=backend)
            runner = ParallelRunner(
                cfg_params,
                n_workers=workers,
                transport=transport,
                n_threads=n_threads,
            )
            streams = synthetic_streams(
                n_streams, n_frames, height=height, width=width, seed=7
            )
            start = time.perf_counter()
            result = runner.run_streams(streams)
            elapsed = time.perf_counter() - start
            assert result.n_failed == 0
            assert result.n_ok == total_frames
            rows.append(
                {
                    "resolution": res_name,
                    "width": width,
                    "height": height,
                    "config": label,
                    "workers": workers,
                    "transport_requested": transport,
                    "transport_used": result.transport,
                    "kernel_backend": backend,
                    "n_threads": n_threads,
                    "frames": total_frames,
                    "elapsed_s": round(elapsed, 4),
                    "fps": round(total_frames / elapsed, 4),
                    "phase_seconds": _phase_breakdown(result.records),
                }
            )

    by_key = {(r["resolution"], r["config"]): r for r in rows}
    pickle_row = by_key[(GATE_RESOLUTION, f"pickle-{GATE_WORKERS}w")]
    shm_row = by_key[(GATE_RESOLUTION, f"shm-{GATE_WORKERS}w")]
    shm_speedup = round(shm_row["fps"] / pickle_row["fps"], 3)
    gate_eligible = cores >= GATE_WORKERS and shm_row["transport_used"] == "shm"
    if gate_eligible:
        gate = "pass" if shm_speedup >= SPEEDUP_FLOOR else "fail"
    elif shm_row["transport_used"] != "shm":
        gate = "skipped: shm transport unavailable (fell back to pickle)"
    else:
        gate = (
            f"skipped: {cores} core(s) < {GATE_WORKERS}; transport cost "
            f"is not the bottleneck on a time-sliced pool"
        )

    # --- native-mt gate: one threaded process beats the process pool ---
    serial_row = by_key[(GATE_RESOLUTION, "serial")]
    mt_row = by_key.get((GATE_RESOLUTION, "native-mt-1p"))
    mt_over_serial = mt_over_shm = None
    mt_gate_eligible = False
    if mt_row is None:
        mt_gate = "skipped: native-mt backend unavailable (no C compiler)"
    else:
        mt_over_serial = round(mt_row["fps"] / serial_row["fps"], 3)
        mt_over_shm = round(mt_row["fps"] / shm_row["fps"], 3)
        mt_gate_eligible = cores >= GATE_WORKERS
        if mt_gate_eligible:
            mt_gate = (
                "pass"
                if mt_over_serial >= 1.0 and mt_over_shm >= 1.0
                else "fail"
            )
        else:
            mt_gate = (
                f"skipped: {cores} core(s) < {GATE_WORKERS}; in-process "
                f"threads are time-sliced like the pool"
            )

    # --- connectivity gate: the CCL kernel must double serial 1080p ----
    baseline_serial = next(
        (
            r
            for r in baseline.get("rows", [])
            if isinstance(r, dict)
            and r.get("resolution") == GATE_RESOLUTION
            and r.get("config") == "serial"
        ),
        {},
    )
    baseline_fps = baseline_serial.get("fps")
    baseline_cores = baseline.get("cores")
    baseline_gate = baseline.get("gate") or {}
    fps_over_baseline = None
    conn_gate_eligible = False
    if not isinstance(baseline_fps, (int, float)) or baseline_fps <= 0:
        conn_gate = (
            "skipped: no committed 1080p serial baseline to compare against"
        )
    else:
        fps_over_baseline = round(serial_row["fps"] / baseline_fps, 3)
        if "connectivity" in baseline_gate:
            # Anti-ratchet: the committed artifact already includes the
            # CCL kernel, so the 2x jump is banked — further drift is the
            # regress sentinel's job, not a gate that compounds per run.
            conn_gate = (
                "skipped: committed baseline already includes the CCL "
                "kernel; drift is covered by the regress sentinel"
            )
        elif cores < GATE_WORKERS:
            conn_gate = (
                f"skipped: {cores} core(s) < {GATE_WORKERS}; numbers "
                f"recorded without the assertion"
            )
        elif baseline_cores is not None and baseline_cores != cores:
            conn_gate = (
                f"skipped: committed baseline ran on {baseline_cores} "
                f"core(s), this host has {cores} — not comparable"
            )
        else:
            conn_gate_eligible = True
            conn_gate = (
                "pass"
                if fps_over_baseline >= CONNECTIVITY_SPEEDUP_FLOOR
                else "fail"
            )

    # --- fused_sigma gate: color+center combined phase time halves -----
    combined = sum(
        serial_row["phase_seconds"].get(p, 0.0) for p in FUSED_GATE_PHASES
    )
    baseline_phases = baseline_serial.get("phase_seconds") or {}
    baseline_combined = sum(
        baseline_phases.get(p, 0.0) for p in FUSED_GATE_PHASES
    )
    phase_speedup = None
    fused_gate_eligible = False
    if baseline_combined <= 0 or combined <= 0:
        fused_gate = (
            "skipped: no committed 1080p serial phase breakdown to "
            "compare against"
        )
    else:
        phase_speedup = round(baseline_combined / combined, 3)
        if "fused_sigma" in baseline_gate:
            fused_gate = (
                "skipped: committed baseline already includes the fused "
                "color/sigma kernels; drift is covered by the regress "
                "sentinel"
            )
        elif cores < GATE_WORKERS:
            fused_gate = (
                f"skipped: {cores} core(s) < {GATE_WORKERS}; numbers "
                f"recorded without the assertion"
            )
        elif baseline_cores is not None and baseline_cores != cores:
            fused_gate = (
                f"skipped: committed baseline ran on {baseline_cores} "
                f"core(s), this host has {cores} — not comparable"
            )
        else:
            fused_gate_eligible = True
            fused_gate = (
                "pass"
                if phase_speedup >= FUSED_PHASE_SPEEDUP_FLOOR
                else "fail"
            )

    # --- e2e_2x gate: serial 1080p vs the frozen pre-CCL baseline ------
    e2e_over_preccl = round(serial_row["fps"] / PRE_CCL_BASELINE_FPS, 3)
    e2e_gate_eligible = cores >= GATE_WORKERS
    if e2e_gate_eligible:
        e2e_gate = "pass" if e2e_over_preccl >= E2E_SPEEDUP_FLOOR else "fail"
    else:
        e2e_gate = (
            f"skipped: {cores} core(s) < {GATE_WORKERS}; numbers "
            f"recorded without the assertion"
        )

    profiling = _profiling_overhead(params, bench_scale)

    payload = {
        "bench": "bench_e2e_video",
        "schema": BENCH_SCHEMA_VERSION,
        "trace": bench_trace_id,
        "scale": bench_scale,
        "cores": cores,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "shm_available": shm_available(),
        "params": {
            "n_superpixels": params.n_superpixels,
            "max_iterations": params.max_iterations,
            "subsample_ratio": params.subsample_ratio,
        },
        "gate": {
            "rule": (
                f"{GATE_WORKERS}-worker shm >= {SPEEDUP_FLOOR}x "
                f"{GATE_WORKERS}-worker pickle at {GATE_RESOLUTION}"
            ),
            "cores": cores,
            "shm_over_pickle": shm_speedup,
            "result": gate,
            "native_mt": {
                "rule": (
                    f"single-process native-mt ({GATE_WORKERS} threads) "
                    f">= serial and >= {GATE_WORKERS}-worker shm at "
                    f"{GATE_RESOLUTION}"
                ),
                "cores": cores,
                "mt_over_serial": mt_over_serial,
                "mt_over_shm": mt_over_shm,
                "result": mt_gate,
            },
            "connectivity": {
                "rule": (
                    f"{GATE_RESOLUTION} serial fps >= "
                    f"{CONNECTIVITY_SPEEDUP_FLOOR}x the committed pre-CCL "
                    f"baseline"
                ),
                "cores": cores,
                "baseline_cores": baseline_cores,
                "baseline_fps": baseline_fps,
                "fps": serial_row["fps"],
                "fps_over_baseline": fps_over_baseline,
                "result": conn_gate,
            },
            "fused_sigma": {
                "rule": (
                    f"{GATE_RESOLUTION} serial "
                    f"{' + '.join(FUSED_GATE_PHASES)} seconds <= "
                    f"committed / {FUSED_PHASE_SPEEDUP_FLOOR}"
                ),
                "cores": cores,
                "baseline_cores": baseline_cores,
                "baseline_combined_s": (
                    round(baseline_combined, 4) if baseline_combined else None
                ),
                "combined_s": round(combined, 4),
                "speedup": phase_speedup,
                "result": fused_gate,
            },
            "e2e_2x": {
                "rule": (
                    f"{GATE_RESOLUTION} serial fps >= {E2E_SPEEDUP_FLOOR}x "
                    f"the frozen pre-CCL baseline "
                    f"({PRE_CCL_BASELINE_FPS} fps)"
                ),
                "cores": cores,
                "pre_ccl_fps": PRE_CCL_BASELINE_FPS,
                "fps": serial_row["fps"],
                "fps_over_pre_ccl": e2e_over_preccl,
                "result": e2e_gate,
            },
        },
        "profiling": profiling,
        "rows": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"end-to-end video throughput — K={params.n_superpixels}, "
        f"{params.max_iterations} sweeps, warm-started streams "
        f"({bench_scale} scale, {cores} core(s) available)",
        "",
        f"{'resolution':>10} {'config':>10} {'transport':>10} "
        f"{'frames':>7} {'elapsed':>9} {'fps':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['resolution']:>10} {r['config']:>10} "
            f"{r['transport_used']:>10} {r['frames']:>7} "
            f"{r['elapsed_s']:>8.2f}s {r['fps']:>8.3f}"
        )
    lines.append("")
    lines.append(
        f"shm over pickle at {GATE_RESOLUTION} ({GATE_WORKERS} workers): "
        f"{shm_speedup:.2f}x — gate {gate}"
    )
    if mt_row is not None:
        lines.append(
            f"native-mt-1p at {GATE_RESOLUTION} ({GATE_WORKERS} threads): "
            f"{mt_over_serial:.2f}x over serial, {mt_over_shm:.2f}x over "
            f"shm-{GATE_WORKERS}w — gate {mt_gate}"
        )
    else:
        lines.append(f"native-mt-1p — gate {mt_gate}")
    if fps_over_baseline is not None:
        lines.append(
            f"serial {GATE_RESOLUTION} over committed baseline: "
            f"{fps_over_baseline:.2f}x ({baseline_fps:.3f} -> "
            f"{serial_row['fps']:.3f} fps) — connectivity gate {conn_gate}"
        )
    else:
        lines.append(f"connectivity gate {conn_gate}")
    if phase_speedup is not None:
        lines.append(
            f"serial {GATE_RESOLUTION} color+center phases: "
            f"{baseline_combined:.2f}s -> {combined:.2f}s "
            f"({phase_speedup:.2f}x) — fused_sigma gate {fused_gate}"
        )
    else:
        lines.append(f"fused_sigma gate {fused_gate}")
    lines.append(
        f"serial {GATE_RESOLUTION} over frozen pre-CCL baseline: "
        f"{e2e_over_preccl:.2f}x ({PRE_CCL_BASELINE_FPS:.3f} -> "
        f"{serial_row['fps']:.3f} fps) — e2e_2x gate {e2e_gate}"
    )
    lines.append(
        f"per-span profiling overhead ({profiling['workload']}): "
        f"{profiling['overhead_pct']:.1f}% "
        f"(budget {profiling['budget_pct']:.0f}%)"
    )
    lines.append(f"wrote {BENCH_JSON.name} at the repo root")
    emit("bench_e2e_video", "\n".join(lines), records=rows)

    if gate_eligible:
        assert shm_speedup >= SPEEDUP_FLOOR, (
            f"shm transport only {shm_speedup:.2f}x over pickle at "
            f"{GATE_RESOLUTION} with {GATE_WORKERS} workers on {cores} "
            f"cores (floor {SPEEDUP_FLOOR}x)"
        )
    if mt_gate_eligible:
        assert mt_over_serial >= 1.0 and mt_over_shm >= 1.0, (
            f"single-process native-mt at {GATE_RESOLUTION} is "
            f"{mt_over_serial:.2f}x over serial and {mt_over_shm:.2f}x over "
            f"the {GATE_WORKERS}-worker shm pool on {cores} cores — it must "
            f"beat both (same arithmetic, zero transport cost)"
        )
    if conn_gate_eligible:
        assert fps_over_baseline >= CONNECTIVITY_SPEEDUP_FLOOR, (
            f"serial {GATE_RESOLUTION} is only {fps_over_baseline:.2f}x "
            f"the committed pre-CCL baseline ({baseline_fps:.3f} -> "
            f"{serial_row['fps']:.3f} fps, floor "
            f"{CONNECTIVITY_SPEEDUP_FLOOR}x) — the CCL kernel should "
            f"have killed the connectivity bottleneck"
        )
    if fused_gate_eligible:
        assert phase_speedup >= FUSED_PHASE_SPEEDUP_FLOOR, (
            f"serial {GATE_RESOLUTION} color+center phase time only "
            f"improved {phase_speedup:.2f}x over the committed baseline "
            f"({baseline_combined:.2f}s -> {combined:.2f}s, floor "
            f"{FUSED_PHASE_SPEEDUP_FLOOR}x) — the fused conversion and "
            f"one-pass sigma kernel should have halved it"
        )
    if e2e_gate_eligible:
        assert e2e_over_preccl >= E2E_SPEEDUP_FLOOR, (
            f"serial {GATE_RESOLUTION} is only {e2e_over_preccl:.2f}x the "
            f"frozen pre-CCL baseline ({PRE_CCL_BASELINE_FPS:.3f} -> "
            f"{serial_row['fps']:.3f} fps, floor {E2E_SPEEDUP_FLOOR}x) — "
            f"the ROADMAP's end-to-end goal"
        )
    assert profiling["overhead_pct"] <= profiling["budget_pct"], (
        f"per-span profiling cost {profiling['overhead_pct']:.1f}% wall "
        f"time on {profiling['workload']} "
        f"(budget {profiling['budget_pct']:.0f}%)"
    )
