"""Extension: voltage/frequency scaling per resolution.

The paper closes Section 6.3 with "the accelerator architecture can scale
gracefully down to lower resolution image streams by reducing the buffer
sizes and ultimately reducing the clock rate" — but never quantifies the
clock-rate half. This bench does: for each Table 4 configuration, the
slowest operating point that still delivers 30 fps, and the frame energy
it saves relative to running flat-out at 1.6 GHz and idling.
"""

from repro.analysis import render_table
from repro.hw import (
    AcceleratorModel,
    min_real_time_point,
    report_at,
    table4_configs,
)


def test_dvfs_per_resolution(benchmark, emit):
    def run():
        rows = []
        savings = {}
        for name, cfg in table4_configs().items():
            nominal = AcceleratorModel(cfg).report()
            pt = min_real_time_point(cfg)
            scaled = report_at(cfg, pt)
            saving = 1.0 - scaled.energy_per_frame_mj / nominal.energy_per_frame_mj
            savings[name] = saving
            rows.append(
                [
                    name,
                    f"{nominal.latency_ms:.1f} ms / {nominal.energy_per_frame_mj:.2f} mJ",
                    f"{pt.frequency_hz / 1e9:.2f} GHz @ {pt.voltage:.2f} V",
                    f"{scaled.latency_ms:.1f} ms / {scaled.energy_per_frame_mj:.2f} mJ",
                    f"{100 * saving:.0f}%",
                ]
            )
        return rows, savings

    rows, savings = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ext_dvfs",
        render_table(
            ["resolution", "nominal (1.6 GHz)", "min real-time point",
             "scaled frame", "energy saved"],
            rows,
            title='Extension: "ultimately reducing the clock rate" '
                  "(paper Section 6.3), quantified",
        ),
    )

    # 1080p has no headroom; the smaller streams save progressively more.
    assert savings["1920x1080"] < 0.05
    assert savings["1280x768"] > 0.25
    assert savings["640x480"] > 0.5
    assert savings["640x480"] > savings["1280x768"] > savings["1920x1080"]
