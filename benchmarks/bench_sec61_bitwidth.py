"""Section 6.1: quality versus datapath bit width.

Reruns S-SLIC with the complete quantized pipeline (256-entry gamma LUT +
8-segment PWL color conversion, ``w``-bit Lab codes, fixed-point distance
with ``w``-bit saturated output) at widths 4..12 and compares USE/boundary
recall against the float64 reference.

Paper: "At 8-bit fixed point representation we see only 0.003 larger
undersegmentation error, and only 0.001 smaller boundary recall [...] At
7-bit precision and below, the increase in error begins to be noticeable."
Our corpus shows the same knee; absolute deltas are ~2x the paper's (the
synthetic scenes carry finer color structure than Berkeley photographs —
see EXPERIMENTS.md).
"""

from repro.analysis import render_table, run_experiment
from repro.viz import ascii_xy_plot


def test_sec61_bitwidth_exploration(benchmark, bench_scale, emit):
    result = benchmark.pedantic(
        lambda: run_experiment("sec61", bench_scale), rounds=1, iterations=1
    )
    points = result.extras["points"]
    rows = [
        [p.label, f"{p.use:.4f}", f"{p.recall:.4f}",
         f"{p.delta_use:+.4f}", f"{p.delta_recall:+.4f}"]
        for p in points
    ]
    table = render_table(
        ["datapath", "USE", "recall", "dUSE vs float", "dRecall vs float"],
        rows,
        title=result.title,
    )
    fixed = [p for p in points if p.bits > 0]
    chart = ascii_xy_plot(
        {"dUSE": ([p.bits for p in fixed], [p.delta_use for p in fixed])},
        x_label="datapath bits",
        y_label="USE increase vs float64",
        title="Quality loss vs width (paper: knee below 8 bits)",
    )
    emit("sec61_bitwidth", table + "\n" + chart + "\n" + result.notes)

    by_bits = {p.bits: p for p in points}
    # 8-bit is near-lossless; the error knee sits below it.
    assert by_bits[8].delta_use < 0.02
    assert by_bits[8].delta_recall < 0.005
    assert by_bits[6].delta_use > 2 * by_bits[8].delta_use
    assert by_bits[4].delta_use > by_bits[6].delta_use
    # Monotone improvement with width.
    widths = sorted(b for b in by_bits if b > 0)
    deltas = [by_bits[b].delta_use for b in widths]
    assert all(a >= b - 0.01 for a, b in zip(deltas, deltas[1:]))
