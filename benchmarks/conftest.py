"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables/figures, prints the rows
(paper value alongside the measured one where applicable), and writes the
same text to ``benchmarks/output/<name>.txt`` so the artifacts survive the
pytest capture. Each emit additionally writes
``benchmarks/output/<name>.jsonl`` through :class:`repro.obs.JsonlSink` —
a ``bench`` event with the report text plus one ``bench.record`` event per
structured row when the bench provides them — so downstream tooling
(``python -m repro stats``, the markdown report, regression dashboards)
can consume benchmark numbers without scraping text.

Scale: set ``REPRO_BENCH_SCALE=full`` for paper-sized corpora (slower);
the default ``quick`` keeps every bench CI-friendly.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.obs import JsonlSink, new_trace_id
from repro.obs.regress import BENCH_SCHEMA_VERSION

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be quick|full, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def bench_trace_id() -> str:
    """One trace id per benchmark session.

    Stamped into every JSONL event and the ``BENCH_*.json`` artifacts so
    all numbers from one run are correlatable with each other (and with
    any ``--trace`` telemetry collected alongside).
    """
    return new_trace_id()


@pytest.fixture(scope="session")
def emit(bench_trace_id):
    """Print a report and persist it under benchmarks/output/.

    ``emit(name, text)`` keeps the historical behaviour (stdout + .txt).
    ``emit(name, text, records=[{...}, ...])`` additionally writes each
    record as a ``bench.record`` JSONL event; the text itself always goes
    into a ``bench`` event so every artifact has a machine-readable twin.
    Every event carries the artifact schema version and the session's
    trace id (see ``repro.obs.regress``).
    """
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str, records=None) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        stamp = {"schema": BENCH_SCHEMA_VERSION, "trace": bench_trace_id}
        with JsonlSink(OUTPUT_DIR / f"{name}.jsonl") as sink:
            sink.emit(
                {
                    "ev": "bench", "name": name, "ts": time.time(),
                    "text": text, **stamp,
                }
            )
            for record in records or ():
                sink.emit({"ev": "bench.record", "name": name, **stamp, **record})

    return _emit
