"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables/figures, prints the rows
(paper value alongside the measured one where applicable), and writes the
same text to ``benchmarks/output/<name>.txt`` so the artifacts survive the
pytest capture.

Scale: set ``REPRO_BENCH_SCALE=full`` for paper-sized corpora (slower);
the default ``quick`` keeps every bench CI-friendly.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be quick|full, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def emit():
    """Print a report and persist it under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
