"""Kernel backend benchmark: bit-identity plus speedup gates.

The ``repro.kernels`` contract has two halves and this bench asserts
both on a VGA frame (480x640, 300 superpixels — the paper's Table 2
operating point scaled to one sweep):

1. **Bit-identity** — every available optimized backend must reproduce
   the reference loops exactly: same labels, same distance buffers, same
   touched-pixel counts, same component numbering.
2. **Speed** — the fastest available backend must beat the reference by
   at least 3x on the CPA sweep and 1.3x on the PPA pass. The CPA gate
   needs the native (C) backend; when no compiler is present the gate is
   reported as skipped rather than failed, because the pure-numpy
   fallback intentionally trades speed for portability.
3. **Threading** — on a machine with >= 4 cores, ``native-mt`` must
   beat serial ``native`` on the CPA sweep. On smaller machines the
   numbers are still recorded (with the thread count used) but the
   gate is reported as skipped — a 1-core container cannot exhibit the
   parallel speedup.
"""

import contextlib
import os
import time

import numpy as np
import pytest

from repro.color import rgb_to_lab
from repro.core import (
    candidate_map,
    grid_geometry,
    initial_centers,
    spatial_weight,
    tile_map,
)
from repro.core.assignment import PixelArrays
from repro.data import SceneConfig, generate_scene
from repro.kernels import available_backends, get_backend

H, W, K = 480, 640, 300

CPA_SPEEDUP_GATE = 3.0
PPA_SPEEDUP_GATE = 1.3
#: native-mt must beat serial native on CPA by this factor when the
#: machine actually has cores to fan out over.
MT_CPA_GATE = 1.3
MT_GATE_CORES = 4


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def setup():
    scene = generate_scene(
        SceneConfig(height=H, width=W, n_regions=24, n_disks=4), seed=7
    )
    lab = rgb_to_lab(scene.image)
    centers = initial_centers(lab, K)
    gh, gw, _, _ = grid_geometry((H, W), K)
    tiles = tile_map((H, W), gh, gw)
    cands = candidate_map(gh, gw)
    s = float(np.sqrt(H * W / len(centers)))
    weight = spatial_weight(10.0, s)
    return lab, centers, tiles, cands, s, weight


def _best_of(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_kernel_backends(setup, emit, bench_scale):
    lab, centers, tiles, cands, s, weight = setup
    repeats = 5 if bench_scale == "full" else 3
    backends = available_backends()
    optimized = [b for b in backends if b != "reference"]
    cores = _cores()

    # Pin the native-mt ambient thread count for the whole bench: up to
    # 4 threads when the cores exist, 2 on smaller machines so the pool
    # and stitch paths still execute (identity is checked regardless).
    mt_threads = min(cores, 4) if cores > 1 else 2
    if "native-mt" in backends:
        from repro.kernels.native_mt import thread_context

        pin = thread_context(mt_threads)
    else:
        pin = contextlib.nullcontext()

    def cpa_run(backend):
        dist = np.full((H, W), np.inf)
        labels = np.full((H, W), -1, dtype=np.int32)
        n = get_backend(backend).cpa_assign(lab, centers, weight, s, dist, labels)
        return labels, dist, n

    def ppa_run(backend):
        pixels = PixelArrays(lab, tiles)
        idx = np.arange(pixels.n_pixels)
        return get_backend(backend).ppa_assign(pixels, idx, cands, centers, weight)

    with pin:
        # --- bit-identity across every available backend ---------------
        ref_cpa = cpa_run("reference")
        ref_ppa = ppa_run("reference")
        ref_cc = get_backend("reference").connected_components(
            ref_ppa.reshape(H, W)
        )
        for b in optimized:
            got_l, got_d, got_n = cpa_run(b)
            assert np.array_equal(got_l, ref_cpa[0]), f"{b}: CPA labels differ"
            assert np.array_equal(got_d, ref_cpa[1]), f"{b}: CPA dist differs"
            assert got_n == ref_cpa[2], f"{b}: CPA touched count differs"
            assert np.array_equal(ppa_run(b), ref_ppa), f"{b}: PPA labels differ"
            got_c, got_k = get_backend(b).connected_components(
                ref_ppa.reshape(H, W)
            )
            assert got_k == ref_cc[1] and np.array_equal(got_c, ref_cc[0]), (
                f"{b}: components differ"
            )

        # --- timings ---------------------------------------------------
        cpa_t = {b: _best_of(lambda b=b: cpa_run(b), repeats) for b in backends}
        ppa_t = {b: _best_of(lambda b=b: ppa_run(b), repeats) for b in backends}

    rows, records = [], []
    header = f"{'backend':<12}{'CPA ms':>10}{'x':>7}{'PPA ms':>10}{'x':>7}"
    rows.append(header)
    rows.append("-" * len(header))
    for b in backends:
        cx = cpa_t["reference"] / cpa_t[b]
        px = ppa_t["reference"] / ppa_t[b]
        rows.append(
            f"{b:<12}{cpa_t[b] * 1e3:>10.2f}{cx:>7.2f}"
            f"{ppa_t[b] * 1e3:>10.2f}{px:>7.2f}"
        )
        record = {
            "backend": b,
            "cpa_ms": cpa_t[b] * 1e3,
            "cpa_speedup": cx,
            "ppa_ms": ppa_t[b] * 1e3,
            "ppa_speedup": px,
            "bit_identical": True,
        }
        if b == "native-mt":
            record["n_threads"] = mt_threads
        records.append(record)

    best_cpa = max(cpa_t["reference"] / cpa_t[b] for b in optimized)
    best_ppa = max(ppa_t["reference"] / ppa_t[b] for b in optimized)
    rows.append("")
    rows.append(
        f"best speedup: CPA {best_cpa:.2f}x (gate {CPA_SPEEDUP_GATE}x), "
        f"PPA {best_ppa:.2f}x (gate {PPA_SPEEDUP_GATE}x)"
    )
    if "native" not in backends:
        rows.append("native backend unavailable (no C compiler): CPA gate skipped")

    # --- threading gate: native-mt over serial native ------------------
    mt_gain = None
    mt_gate_eligible = False
    if "native-mt" in backends and "native" in backends:
        mt_gain = cpa_t["native"] / cpa_t["native-mt"]
        mt_gate_eligible = cores >= MT_GATE_CORES
        rows.append(
            f"native-mt CPA gain over serial native: {mt_gain:.2f}x "
            f"at {mt_threads} threads (gate {MT_CPA_GATE}x)"
        )
        if not mt_gate_eligible:
            rows.append(
                f"{cores} core(s) < {MT_GATE_CORES}: native-mt speedup "
                f"gate skipped (numbers recorded only)"
            )
        records.append(
            {
                "backend": "native-mt-gate",
                "gain_over_native": mt_gain,
                "n_threads": mt_threads,
                "cores": cores,
                "eligible": mt_gate_eligible,
            }
        )
    emit("kernels", "\n".join(rows), records=records)

    assert best_ppa >= PPA_SPEEDUP_GATE, (
        f"PPA speedup {best_ppa:.2f}x below the {PPA_SPEEDUP_GATE}x gate"
    )
    if "native" in backends:
        assert best_cpa >= CPA_SPEEDUP_GATE, (
            f"CPA speedup {best_cpa:.2f}x below the {CPA_SPEEDUP_GATE}x gate"
        )
    if mt_gate_eligible:
        assert mt_gain >= MT_CPA_GATE, (
            f"native-mt CPA gain {mt_gain:.2f}x over serial native is below "
            f"the {MT_CPA_GATE}x gate on a {cores}-core machine"
        )
