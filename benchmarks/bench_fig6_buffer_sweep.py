"""Fig 6: frame time versus channel scratchpad buffer size.

9-9-6 configuration, 1080p, K = 5000, the paper's DRAM assumptions
(256 b/cycle peak, 50-cycle latency). The published conclusion — "To
achieve real-time performance, the buffer size must be at least 4kB. As
larger buffers provide only slightly better frame time at the cost of
larger area and energy, we choose 4kB buffers" — must reproduce, including
the ~35% memory share of total execution at 4 kB.
"""

from repro.analysis import render_table, sweep_buffer_sizes
from repro.hw import PAPER_FIG6_BUFFERS_KB, REAL_TIME_MS
from repro.viz import ascii_xy_plot


def test_fig6_buffer_size_sweep(benchmark, emit):
    reports = benchmark(lambda: sweep_buffer_sizes(PAPER_FIG6_BUFFERS_KB))
    rows = [
        [
            f"{r.config.buffer_kb_per_channel:.0f} kB",
            f"{r.latency_ms:.2f}",
            f"{r.fps:.1f}",
            f"{100 * r.latency.memory_ms / r.latency_ms:.0f}%",
            "yes" if r.real_time else "no",
        ]
        for r in reports
    ]
    table = render_table(
        ["buffer/channel", "frame time ms", "fps", "memory share", "real-time"],
        rows,
        title=f"Fig 6: frame time vs buffer size (real-time budget {REAL_TIME_MS:.1f} ms)",
    )
    chart = ascii_xy_plot(
        {
            "frame time": (
                [r.config.buffer_kb_per_channel for r in reports],
                [r.latency_ms for r in reports],
            )
        },
        x_label="buffer kB per channel",
        y_label="ms",
        title="Fig 6 (paper: 34.3 ms at 1 kB falling to ~32.5 ms; 4 kB crosses 30 fps)",
    )
    emit("fig6_buffer_sweep", table + "\n" + chart)

    by_kb = {r.config.buffer_kb_per_channel: r for r in reports}
    assert not by_kb[1].real_time
    assert not by_kb[2].real_time
    assert by_kb[4].real_time  # the paper's "at least 4 kB"
    # Memory share at the chosen 4 kB point ~35% (paper's statement).
    mem_share = by_kb[4].latency.memory_ms / by_kb[4].latency_ms
    assert 0.25 < mem_share < 0.45
    # Diminishing returns beyond 4 kB.
    assert by_kb[4].latency_ms - by_kb[128].latency_ms < 1.0
