"""Table 5: GPU, mobile GPU, and S-SLIC accelerator comparison.

The Tesla K20 / Tegra K1 rows come from the calibrated roofline model (see
``repro.baselines.gpu_model``); the accelerator row from the Table 4 1080p
configuration. Normalization and every derived ratio recompute the paper's
arithmetic: 28 nm power scaled by 1/2.2 to 16 nm; energy/frame = normalized
power x latency; headline efficiencies >500x (K20) and >250x (TK1).
"""

from repro.analysis import render_table
from repro.baselines import table5_comparison
from repro.hw import AcceleratorModel, PAPER_TABLE5, table4_configs


def test_table5_platform_comparison(benchmark, emit):
    def build():
        accel = AcceleratorModel(table4_configs()["1920x1080"]).report()
        return table5_comparison(accel)

    cmp = benchmark(build)
    rows = []
    for name, row in cmp["rows"].items():
        p = PAPER_TABLE5[name]
        rows.append(
            [
                name,
                row.algorithm,
                row.technology,
                f"{row.on_chip_kb:.0f} ({p['on_chip_kb']})",
                f"{row.cores} ({p['cores']})",
                f"{row.avg_power_w * 1e3:.0f} ({p['avg_power_w'] * 1e3:.0f})",
                f"{row.norm_power_w * 1e3:.0f} ({p['norm_power_w'] * 1e3:.0f})",
                f"{row.latency_ms:.1f} ({p['latency_ms']})",
                f"{row.energy_per_frame_mj_norm:.1f} ({p['energy_mj_norm']})",
            ]
        )
    table = render_table(
        ["platform", "algo", "tech", "on-chip kB", "cores", "avg mW",
         "norm mW", "latency ms", "mJ/frame (norm)"],
        rows,
        title="Table 5: platform comparison at 1080p, K=5000 — measured (paper)",
    )
    verdict = (
        f"energy efficiency vs K20: {cmp['efficiency_vs_k20']:.0f}x "
        "(paper: over 500x); "
        f"vs TK1: {cmp['efficiency_vs_tk1']:.0f}x (paper: over 250x)"
    )
    emit("table5_gpu_comparison", table + "\n" + verdict)

    assert cmp["efficiency_vs_k20"] > 500
    assert cmp["efficiency_vs_tk1"] > 250
    rows_d = cmp["rows"]
    assert rows_d["This Work"].real_time
    assert not rows_d["TK1"].real_time
    # The accelerator's power budget is ~3 orders below the K20's.
    assert rows_d["Tesla K20"].avg_power_w / rows_d["This Work"].avg_power_w > 1000
