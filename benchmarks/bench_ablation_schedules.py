"""Ablation B: subsampling schedule choice.

Section 3: "Choosing the proper subsampling strategy is fundamental to
guaranteeing the convergence of the iterative algorithm." Interleaved
subsets (strided / checkerboard / rows / random) keep every superpixel fed
each sub-iteration; the contiguous ``blocks`` schedule starves most of them
and must converge visibly worse at an equal iteration budget.
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.experiments import EVAL_COMPACTNESS, eval_dataset, _eval_k
from repro.core import sslic
from repro.metrics import undersegmentation_error

SCHEDULES = ("strided", "checkerboard", "rows", "random", "blocks")


def test_ablation_subset_schedules(benchmark, bench_scale, emit):
    dataset = eval_dataset(bench_scale)
    k = _eval_k(bench_scale)
    budget = 3  # early-convergence regime, where the schedule matters most

    def run():
        out = {}
        for strategy in SCHEDULES:
            uses = []
            for scene in dataset:
                result = sslic(
                    scene.image,
                    n_superpixels=k,
                    compactness=EVAL_COMPACTNESS,
                    subsample_ratio=0.25,
                    subset_strategy=strategy,
                    max_iterations=budget,
                    convergence_threshold=0.0,
                )
                uses.append(undersegmentation_error(result.labels, scene.gt_labels))
            out[strategy] = float(np.mean(uses))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[s, f"{results[s]:.4f}"] for s in SCHEDULES]
    emit(
        "ablation_schedules",
        render_table(
            ["schedule", f"USE after {budget} sweeps (ratio 0.25)"],
            rows,
            title="Ablation B: subset schedule choice "
                  "(interleaved schedules converge; contiguous blocks lag)",
        ),
    )

    interleaved = [results[s] for s in ("strided", "checkerboard", "rows", "random")]
    # Interleaved schedules agree with each other...
    assert max(interleaved) - min(interleaved) < 0.04
    # ...and the pathological blocks schedule is clearly worse.
    assert results["blocks"] > max(interleaved) + 0.01
