"""Extension: Preemptive SLIC and the Preemptive + S-SLIC combination.

Section 8 calls the combination "beyond the scope of this work"; this bench
runs it. Reported: quality parity with plain SLIC and the fraction of
cluster-window scans preemption eliminates (the compute a hardware
implementation would skip).
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.experiments import EVAL_COMPACTNESS, eval_dataset, _eval_k
from repro.baselines import preemptive_slic, preemptive_sslic
from repro.core import slic
from repro.metrics import undersegmentation_error


def test_extension_preemptive_combination(benchmark, bench_scale, emit):
    dataset = eval_dataset(bench_scale)
    k = _eval_k(bench_scale)
    kwargs = dict(
        n_superpixels=k, compactness=EVAL_COMPACTNESS,
        max_iterations=10, convergence_threshold=0.0,
    )

    def run():
        rows = {"SLIC": [], "Preemptive SLIC": [], "Preemptive S-SLIC (0.5)": []}
        scans = {"Preemptive SLIC": [], "Preemptive S-SLIC (0.5)": []}
        for scene in dataset:
            base = slic(scene.image, **kwargs)
            rows["SLIC"].append(
                undersegmentation_error(base.labels, scene.gt_labels)
            )
            pre = preemptive_slic(scene.image, preemption_threshold=0.3, **kwargs)
            rows["Preemptive SLIC"].append(
                undersegmentation_error(pre.labels, scene.gt_labels)
            )
            scans["Preemptive SLIC"].append(
                sum(pre.active_history) / (kwargs["max_iterations"] * pre.n_superpixels)
            )
            combo = preemptive_sslic(scene.image, preemption_threshold=0.3, **kwargs)
            rows["Preemptive S-SLIC (0.5)"].append(
                undersegmentation_error(combo.labels, scene.gt_labels)
            )
            scans["Preemptive S-SLIC (0.5)"].append(
                len(combo.active_history) / kwargs["max_iterations"]
            )
        return rows, scans

    rows, scans = benchmark.pedantic(run, rounds=1, iterations=1)
    use = {name: float(np.mean(v)) for name, v in rows.items()}
    table_rows = [
        ["SLIC (baseline)", f"{use['SLIC']:.4f}", "100%"],
        [
            "Preemptive SLIC",
            f"{use['Preemptive SLIC']:.4f}",
            f"{100 * np.mean(scans['Preemptive SLIC']):.0f}% of window scans",
        ],
        [
            "Preemptive S-SLIC (0.5)",
            f"{use['Preemptive S-SLIC (0.5)']:.4f}",
            f"{100 * np.mean(scans['Preemptive S-SLIC (0.5)']):.0f}% of sweeps",
        ],
    ]
    emit(
        "ext_preemptive",
        render_table(
            ["algorithm", "USE", "work performed"],
            table_rows,
            title="Extension: preemption x subsampling "
                  "(the combination the paper left as future work)",
        ),
    )

    # Quality parity within a small band, with real work savings.
    assert abs(use["Preemptive SLIC"] - use["SLIC"]) < 0.03
    assert abs(use["Preemptive S-SLIC (0.5)"] - use["SLIC"]) < 0.03
    assert np.mean(scans["Preemptive SLIC"]) < 0.95
