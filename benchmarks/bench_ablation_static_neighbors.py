"""Ablation C: static vs dynamic 9-candidate assignment.

Section 4.3: "Although SLIC executes this step with each image, our S-SLIC
implementation precomputes these values. We found that statically assigning
these values has minimal effect on the accuracy of the algorithm." The
accelerator depends on this (the tile regions are computed offline); this
bench quantifies the claim.
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.experiments import EVAL_COMPACTNESS, eval_dataset, _eval_k
from repro.core import sslic
from repro.metrics import boundary_recall, undersegmentation_error


def test_ablation_static_vs_dynamic_neighbors(benchmark, bench_scale, emit):
    dataset = eval_dataset(bench_scale)
    k = _eval_k(bench_scale)

    def run():
        out = {}
        for static in (True, False):
            uses, brs = [], []
            for scene in dataset:
                result = sslic(
                    scene.image,
                    n_superpixels=k,
                    compactness=EVAL_COMPACTNESS,
                    static_neighbors=static,
                    max_iterations=8,
                    convergence_threshold=0.0,
                )
                uses.append(undersegmentation_error(result.labels, scene.gt_labels))
                brs.append(boundary_recall(result.labels, scene.gt_labels, tolerance=1))
            out["static (accelerator)" if static else "dynamic (per sweep)"] = (
                float(np.mean(uses)),
                float(np.mean(brs)),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, f"{u:.4f}", f"{b:.4f}"] for name, (u, b) in results.items()]
    emit(
        "ablation_static_neighbors",
        render_table(
            ["candidate map", "USE", "boundary recall"],
            rows,
            title="Ablation C: static vs dynamic 9-candidate maps "
                  "(paper: 'minimal effect on accuracy')",
        ),
    )

    use_static, br_static = results["static (accelerator)"]
    use_dyn, br_dyn = results["dynamic (per sweep)"]
    # "Minimal effect": small absolute gap on both metrics.
    assert abs(use_static - use_dyn) < 0.02
    assert abs(br_static - br_dyn) < 0.015
