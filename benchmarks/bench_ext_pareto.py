"""Extension: joint design space + Pareto analysis.

The paper explores ways / width / buffer size one axis at a time and picks
the design by inspection. Sweeping the *joint* space shows the published
configuration is derivable: among designs satisfying the paper's own
constraints — 8-bit minimum width (the Section 6.1 quality floor) and a
single core (the chosen microarchitecture) — the minimum-area real-time
point at 1080p is exactly 9-9-6 ways with 4 kB buffers.

Dropping those constraints also quantifies what they cost: narrower widths
and a second core can shave area/latency further, at quality and
integration costs the paper's quality study rules out.
"""

from repro.analysis import (
    best_real_time_design,
    joint_design_space,
    pareto_frontier,
    render_table,
)
from repro.hw import ClusterWays


def test_pareto_derives_published_design(benchmark, emit):
    reports = benchmark.pedantic(joint_design_space, rounds=1, iterations=1)
    frontier = pareto_frontier(reports)

    constrained = [
        r for r in reports if r.config.bits >= 8 and r.config.n_cores == 1
    ]
    paper_pick = best_real_time_design(constrained)
    unconstrained_pick = best_real_time_design(reports)

    def describe(r):
        c = r.config
        return [
            c.ways.label, f"{c.buffer_kb_per_channel:.0f} kB", f"{c.bits}-bit",
            c.n_cores, f"{r.latency_ms:.1f}", f"{r.area_mm2:.4f}",
            f"{r.energy_per_frame_mj:.2f}",
        ]

    rows = [
        ["paper-constrained optimum"] + describe(paper_pick),
        ["unconstrained optimum"] + describe(unconstrained_pick),
    ]
    text = render_table(
        ["selection", "ways", "buffer", "width", "cores", "ms", "mm2", "mJ"],
        rows,
        title=(
            f"Joint DSE: {len(reports)} designs, {len(frontier)} on the "
            "Pareto frontier (latency/area/energy)"
        ),
    )
    text += (
        "\nWith the paper's constraints (>=8-bit quality floor, single "
        "core), the minimum-area real-time design IS the published one: "
        "9-9-6 ways, 8-bit, 4 kB buffers."
    )
    emit("ext_pareto", text)

    # The published design emerges from the constrained optimization.
    c = paper_pick.config
    assert c.ways == ClusterWays(9, 9, 6)
    assert c.bits == 8
    assert c.buffer_kb_per_channel == 4.0
    assert paper_pick.real_time
    # The frontier is a small non-dominated subset.
    assert 0 < len(frontier) < len(reports)
    for r in frontier:
        assert r in reports
