"""Table 3: the Cluster Update Unit parallelism design space.

Five configurations (distance-minimum-adder unroll ways) evaluated for one
1080p iteration at 1.6 GHz. The paper's published values appear alongside
each measured row; latencies and throughputs reproduce exactly, area and
energy within the model tolerances documented in DESIGN.md.
"""

import pytest

from repro.analysis import render_table, sweep_cluster_configs
from repro.hw import PAPER_TABLE3


def test_table3_cluster_unit_configs(benchmark, emit):
    reports = benchmark(sweep_cluster_configs)
    rows = []
    for r in reports:
        p = PAPER_TABLE3[r.label]
        rows.append(
            [
                r.label,
                f"{r.area_mm2:.4f} ({p['area_mm2']})",
                f"{r.power_mw:.2f} ({p['power_mw']})",
                f"{r.latency_cycles} ({p['latency_cycles']})",
                f"{r.throughput_pixels_per_cycle:.3f} ({p['throughput']:.3f})",
                f"{r.time_ms:.2f} ({p['time_ms']})",
                f"{r.energy_uj:.1f} ({p['energy_uj']})",
            ]
        )
    emit(
        "table3_parallelism",
        render_table(
            ["config", "area mm2", "power mW", "latency cyc", "px/cyc",
             "time ms", "energy uJ"],
            rows,
            title="Table 3: Cluster Update Unit configurations — measured (paper)",
        ),
    )

    by_label = {r.label: r for r in reports}
    # The paper's design decision: 9-9-6 way chosen for throughput at a
    # modest energy cost.
    full = by_label["9-9-6 way"]
    minimal = by_label["1-1-1 way"]
    assert full.throughput_pixels_per_cycle == 1.0
    assert full.time_ms < minimal.time_ms / 8.5
    assert full.area_mm2 / minimal.area_mm2 == pytest.approx(7.8, rel=0.05)
    for r in reports:
        assert r.latency_cycles == PAPER_TABLE3[r.label]["latency_cycles"]
