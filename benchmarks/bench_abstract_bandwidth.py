"""The abstract's headline: "pixel subsampling to reduce the memory
bandwidth by 1.8x".

Two sides to verify:

1. **Arithmetic** — at an equal pass count, S-SLIC(0.5) subset passes
   stream half the per-pass pixel data of SLIC's full sweeps; with the
   fixed input/output traffic included, the frame-level DRAM ratio is
   (3 + 9*5 + 1) / (3 + 9*2.5 + 1) = 1.85x ~ the paper's 1.8x.
2. **Quality** — the substitution is only legitimate if 9 subset passes
   deliver quality comparable to 9 full sweeps. That is exactly the
   OS-EM effect of Section 3 (centers update twice as often), measured
   here on the evaluation corpus.
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.experiments import EVAL_COMPACTNESS, eval_dataset, _eval_k
from repro.core import slic, sslic
from repro.hw import DramModel
from repro.metrics import undersegmentation_error

N_1080P = 1920 * 1080
PASSES = 9  # the accelerator's iteration count (Section 7)


def test_abstract_bandwidth_reduction(benchmark, bench_scale, emit):
    dram = DramModel()
    traffic_slic = dram.frame_traffic(N_1080P, PASSES)
    traffic_sslic = dram.frame_traffic(N_1080P, PASSES, subsample_ratio=0.5)
    ratio = traffic_slic.total_bytes / traffic_sslic.total_bytes

    dataset = eval_dataset(bench_scale)
    k = _eval_k(bench_scale)

    def quality():
        use_full, use_sub = [], []
        for scene in dataset:
            r_full = slic(
                scene.image, n_superpixels=k, compactness=EVAL_COMPACTNESS,
                max_iterations=PASSES, convergence_threshold=0.0,
            )
            r_sub = sslic(
                scene.image, n_superpixels=k, compactness=EVAL_COMPACTNESS,
                subsample_ratio=0.5, max_subiterations=PASSES,
                convergence_threshold=0.0,
            )
            use_full.append(undersegmentation_error(r_full.labels, scene.gt_labels))
            use_sub.append(undersegmentation_error(r_sub.labels, scene.gt_labels))
        return float(np.mean(use_full)), float(np.mean(use_sub))

    use_full, use_sub = benchmark.pedantic(quality, rounds=1, iterations=1)

    rows = [
        ["SLIC, 9 full sweeps", f"{traffic_slic.total_mb:.0f} MB", f"{use_full:.4f}"],
        ["S-SLIC(0.5), 9 subset passes", f"{traffic_sslic.total_mb:.0f} MB",
         f"{use_sub:.4f}"],
        ["ratio", f"{ratio:.2f}x (paper: 1.8x)",
         f"{use_sub - use_full:+.4f} USE"],
    ]
    emit(
        "abstract_bandwidth",
        render_table(
            ["configuration", "frame DRAM traffic (1080p)", "USE (corpus)"],
            rows,
            title="Abstract claim: subsampling reduces memory bandwidth ~1.8x",
        ),
    )

    assert 1.7 < ratio < 2.0
    # The halved-bandwidth configuration stays within a small quality band
    # of the full-sweep baseline (the OS-EM compensation).
    assert use_sub < use_full + 0.03
