"""Ablation A: PPA vs CPA accuracy.

Section 4.2: "The PPA shows almost same but slightly better SLIC accuracy
than the CPA since the PPA considers more distance values in SP decision."
This bench runs both iteration orders to convergence on the evaluation
corpus and compares quality.
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.experiments import EVAL_COMPACTNESS, eval_dataset, _eval_k
from repro.baselines import gslic
from repro.core import slic
from repro.metrics import boundary_recall, undersegmentation_error


def test_ablation_ppa_vs_cpa(benchmark, bench_scale, emit):
    dataset = eval_dataset(bench_scale)
    k = _eval_k(bench_scale)

    def run():
        out = {"CPA (original SLIC)": [], "PPA (gSLIC order)": []}
        for scene in dataset:
            kwargs = dict(
                n_superpixels=k, compactness=EVAL_COMPACTNESS,
                max_iterations=10, convergence_threshold=0.0,
            )
            for name, result in (
                ("CPA (original SLIC)", slic(scene.image, **kwargs)),
                ("PPA (gSLIC order)", gslic(scene.image, **kwargs)),
            ):
                out[name].append(
                    (
                        undersegmentation_error(result.labels, scene.gt_labels),
                        boundary_recall(result.labels, scene.gt_labels, tolerance=1),
                    )
                )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    means = {}
    for name, vals in results.items():
        use = float(np.mean([v[0] for v in vals]))
        br = float(np.mean([v[1] for v in vals]))
        means[name] = (use, br)
        rows.append([name, f"{use:.4f}", f"{br:.4f}"])
    emit(
        "ablation_ppa_vs_cpa",
        render_table(
            ["iteration order", "USE", "boundary recall"],
            rows,
            title="Ablation A: CPA vs PPA converged quality "
                  "(paper: 'almost same, slightly better' for PPA)",
        ),
    )

    use_cpa, br_cpa = means["CPA (original SLIC)"]
    use_ppa, br_ppa = means["PPA (gSLIC order)"]
    # "Almost same": within a small absolute band either way.
    assert abs(use_ppa - use_cpa) < 0.02
    assert abs(br_ppa - br_cpa) < 0.02
