"""Table 1: runtime phase breakdown of SLIC versus S-SLIC.

Paper (i7-4600M, Berkeley corpus):

===========  =====  ======
phase        SLIC   S-SLIC
===========  =====  ======
color conv   23.4%   18.7%
dist + min   65.9%   59.7%
center upd   10.2%   17.9%
other         0.5%    3.7%
===========  =====  ======

The shape claims under test: distance+min dominates both algorithms, and
the center-update share *grows* for S-SLIC (it updates centers once per
subset pass). Absolute percentages depend on the host and the vectorized
implementation, not just the algorithm.
"""

from repro.analysis import TABLE1_COLUMNS, render_table, run_experiment
from repro.hw import PAPER_TABLE1


def test_table1_phase_breakdown(benchmark, bench_scale, emit):
    result = benchmark.pedantic(
        lambda: run_experiment("table1", bench_scale), rounds=1, iterations=1
    )
    measured = result.extras["measured"]
    rows = []
    for algo in ("SLIC", "S-SLIC"):
        rows.append(
            [f"{algo} (measured)"] + [f"{measured[algo][c]:.1f}%" for c in TABLE1_COLUMNS]
        )
        rows.append(
            [f"{algo} (paper)"] + [f"{PAPER_TABLE1[algo][c]:.1f}%" for c in TABLE1_COLUMNS]
        )
    emit(
        "table1_breakdown",
        render_table(["algorithm"] + list(TABLE1_COLUMNS), rows, title=result.title),
    )

    # Shape assertions (Section 4.1's observations).
    for algo in ("SLIC", "S-SLIC"):
        assert measured[algo]["distance_min"] == max(measured[algo].values())
    assert measured["S-SLIC"]["center_update"] > measured["SLIC"]["center_update"]
