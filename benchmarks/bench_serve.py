"""Serving front end under load: latency, capacity, and overload behavior.

The acceptance contract of the serving PR, measured end to end over real
sockets against a :class:`~repro.serve.BackgroundServer`:

1. **Uncontended closed-loop** — one client, sequential requests:
   p50/p95/p99 latency and per-request throughput. This is the latency
   floor everything else is judged against.
2. **Closed-loop capacity** — a small closed-loop client pool drives
   the server flat out; completed-request rate is the **max sustained
   RPS** (with one worker this is the service rate, so the open-loop
   phase can be provisioned at a known multiple of it).
3. **Open-loop overload** — requests fired on a fixed schedule at
   ``OVERLOAD_FACTOR``x measured capacity, deliberately not waiting for
   responses (the muBench-style generator: offered load is independent
   of service rate). The gates:

   * the server **sheds** (429s appear) and the admission queue never
     exceeds its bound — overload never turns into an unbounded queue;
   * steady-state accepted-request p99 stays within
     ``LATENCY_BLOWUP_CEILING``x the uncontended p99 (the bounded queue
     plus the degradation ladder is what makes this hold);
   * degraded responses appeared and every one carried the explicit
     ``degraded`` marker (body field and ``X-Repro-Degraded`` header
     agree).

4. **Drain** — with a frame still in flight, drain the server: the
   in-flight request must complete with a real 200 and the drain must
   report clean.

Artifacts: the shared ``emit`` fixture writes
``benchmarks/output/bench_serve.{txt,jsonl}`` and the committed
``BENCH_serve.json`` lands at the repo root for ``repro regress``
(``p*_ms`` flatten as lower-is-better, ``*rps`` as higher-is-better).

The first ``hold_s`` of the overload phase runs at full quality by
design (the degradation dwell must elapse first), so the accepted-
latency percentile excludes a short warmup window and judges steady
state — the warmup tail is recorded separately, not hidden.
"""

import json
import platform
import threading
import time
from pathlib import Path

import pytest

from repro.core import SlicParams
from repro.obs.regress import BENCH_SCHEMA_VERSION
from repro.serve import BackgroundServer, ServeConfig

pytestmark = pytest.mark.slow

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_serve.json"

#: Offered load during the open-loop phase, as a multiple of measured
#: capacity (the ISSUE's ">= 2x measured capacity" bar).
OVERLOAD_FACTOR = 2.0

#: Accepted-request p99 under overload may be at most this multiple of
#: the uncontended p99.
LATENCY_BLOWUP_CEILING = 2.0

#: Samples inside this initial window of the overload phase are warmup
#: (the degradation dwell has not elapsed yet) and are excluded from the
#: steady-state percentile; their count is still recorded.
OVERLOAD_WARMUP_S = 1.0

FRAME = {"synthetic": {"seed": 3, "height": 64, "width": 80}}
PARAMS = SlicParams(n_superpixels=48, max_iterations=10)


def _request(port, body=FRAME, timeout=60):
    """One POST /v1/segment; returns (status, elapsed_s, payload, headers)."""
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        start = time.perf_counter()
        conn.request("POST", "/v1/segment", json.dumps(body))
        resp = conn.getresponse()
        data = json.loads(resp.read())
        return (
            resp.status, time.perf_counter() - start, data,
            dict(resp.getheaders()),
        )
    finally:
        conn.close()


def _percentile(samples, q):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
    return ordered[idx]


def _latency_stats(samples):
    return {
        "n": len(samples),
        "p50_ms": round(_percentile(samples, 50) * 1000, 3),
        "p95_ms": round(_percentile(samples, 95) * 1000, 3),
        "p99_ms": round(_percentile(samples, 99) * 1000, 3),
    }


def _uncontended(port, n_requests):
    latencies = []
    for _ in range(3):  # warm the kernels, the tracker, the connection path
        _request(port)
    for _ in range(n_requests):
        status, elapsed, _, _ = _request(port)
        assert status == 200
        latencies.append(elapsed)
    stats = _latency_stats(latencies)
    stats["rps"] = round(len(latencies) / sum(latencies), 2)
    return stats


def _closed_loop_capacity(port, duration_s, clients=2):
    """Completed 200s/sec with a small always-busy closed-loop pool."""
    done = []
    stop = time.perf_counter() + duration_s

    def worker():
        while time.perf_counter() < stop:
            status, elapsed, _, _ = _request(port)
            if status == 200:
                done.append(elapsed)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - start
    return len(done) / wall if wall > 0 else 0.0


async def _async_request(port, body):
    """One POST over a fresh connection, parsed with asyncio streams.

    The open-loop generator must not cost one OS thread per in-flight
    request — on a small host hundreds of client threads would contend
    with the server for the CPU and the measured latency would be the
    client's scheduler, not the service. A single-threaded asyncio
    client keeps the generator's footprint constant at any offered rate.
    """
    import asyncio

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        request = (
            "POST /v1/segment HTTP/1.1\r\n"
            "Host: bench\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode() + body
        start = time.perf_counter()
        writer.write(request)
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        elapsed_first = time.perf_counter() - start
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        headers = {}
        for line in lines[1:]:
            key, sep, value = line.partition(":")
            if sep:
                headers[key.strip()] = value.strip()
        length = int(headers.get("Content-Length", "0") or "0")
        raw = await reader.readexactly(length) if length else b""
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            data = {}
        return status, elapsed_first, data, headers
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _open_loop_overload(port, offered_rps, duration_s):
    """Fire at a fixed schedule regardless of completions (open loop)."""
    import asyncio

    body = json.dumps(FRAME).encode()

    async def drive():
        results = []
        tasks = []
        interval = 1.0 / offered_rps
        t0 = time.perf_counter()
        n_fired = 0

        async def fire(at):
            try:
                outcome = await _async_request(port, body)
            except (ConnectionError, OSError, asyncio.IncompleteReadError):
                outcome = (0, 0.0, {}, {})
            results.append((at, *outcome))

        while True:
            now = time.perf_counter() - t0
            if now >= duration_s:
                break
            due = n_fired * interval
            if now < due:
                await asyncio.sleep(due - now)
                continue
            tasks.append(asyncio.ensure_future(fire(now)))
            n_fired += 1
        if tasks:
            await asyncio.wait(tasks, timeout=60)
        return results

    return asyncio.run(drive())


def test_serve_under_load(emit, bench_scale, bench_trace_id):
    import os

    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1

    n_uncontended = 40 if bench_scale == "full" else 15
    overload_s = 10.0 if bench_scale == "full" else 6.0

    config = ServeConfig(
        params=PARAMS,
        n_workers=1,
        max_queue=1,          # bounded hard: accepted wait <= 1 service
        exec_mode="thread",
        degrade_enabled=True,
        overload_ratio=0.75,
        recover_ratio=0.25,
        degrade_hold_s=0.2,   # fast ladder for a short bench window
    )
    with BackgroundServer(config) as bg:
        port = bg.port

        # Phase 1: uncontended latency floor.
        uncontended = _uncontended(port, n_uncontended)

        # Phase 2: max sustained RPS (closed loop, always busy).
        capacity_rps = _closed_loop_capacity(port, duration_s=3.0)
        assert capacity_rps > 0

        # Let the ladder recover to full quality before overloading.
        time.sleep(3 * config.degrade_hold_s)

        # Phase 3: open-loop overload at OVERLOAD_FACTOR x capacity.
        offered_rps = OVERLOAD_FACTOR * capacity_rps
        overload = _open_loop_overload(port, offered_rps, overload_s)

        accepted = [r for r in overload if r[1] == 200]
        shed = [r for r in overload if r[1] == 429]
        steady = [r for r in accepted if r[0] >= OVERLOAD_WARMUP_S]
        steady_stats = _latency_stats([r[2] for r in steady])
        degraded = [r for r in accepted if r[3].get("degraded")]
        marker_consistent = all(
            r[4].get("X-Repro-Degraded") == "true" for r in degraded
        )
        peak_outstanding = bg.server.admission.peak_outstanding
        shed_rate = len(shed) / len(overload) if overload else 0.0

        shed_gate = (
            "pass"
            if shed and peak_outstanding <= config.max_queue
            else "fail"
        )
        blowup = (
            steady_stats["p99_ms"] / uncontended["p99_ms"]
            if uncontended["p99_ms"] > 0 and steady else float("inf")
        )
        latency_gate = (
            "pass" if steady and blowup <= LATENCY_BLOWUP_CEILING
            else "fail"
        )
        degrade_gate = (
            "pass" if degraded and marker_consistent else "fail"
        )

        # Phase 4: drain with a frame in flight.
        big = {"synthetic": {"seed": 1, "height": 128, "width": 160}}
        inflight = {}

        def slow_frame():
            inflight["result"] = _request(port, body=big)

        worker = threading.Thread(target=slow_frame)
        worker.start()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if bg.server.admission.outstanding > 0:
                break
            time.sleep(0.002)
        clean = bg.drain()
        worker.join(timeout=60)
        drained_status = inflight.get("result", (0,))[0]
        drain_gate = (
            "pass" if clean and drained_status == 200 else "fail"
        )

    rows = [
        {"phase": "uncontended", **uncontended},
        {
            "phase": "overload_steady",
            **steady_stats,
            "offered_rps": round(offered_rps, 2),
            "shed_rate": round(shed_rate, 4),
            "degraded_fraction": round(
                len(degraded) / len(accepted), 4
            ) if accepted else 0.0,
        },
    ]
    payload = {
        "bench": "bench_serve",
        "schema": BENCH_SCHEMA_VERSION,
        "trace": bench_trace_id,
        "scale": bench_scale,
        "cores": cores,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "params": {
            "n_superpixels": PARAMS.n_superpixels,
            "max_iterations": PARAMS.max_iterations,
            "subsample_ratio": PARAMS.subsample_ratio,
        },
        "config": {
            "n_workers": config.n_workers,
            "max_queue": config.max_queue,
            "exec_mode": config.exec_mode,
            "degrade_hold_s": config.degrade_hold_s,
        },
        "max_sustained_rps": round(capacity_rps, 2),
        "gate": {
            "shed": {
                "rule": (
                    f"at {OVERLOAD_FACTOR}x capacity the server sheds "
                    "429s and outstanding never exceeds max_queue"
                ),
                "cores": cores,
                "shed_count": len(shed),
                "shed_rate": round(shed_rate, 4),
                "peak_outstanding": peak_outstanding,
                "result": shed_gate,
            },
            "latency": {
                "rule": (
                    "steady-state accepted p99 under overload <= "
                    f"{LATENCY_BLOWUP_CEILING}x uncontended p99 "
                    f"(first {OVERLOAD_WARMUP_S}s excluded as "
                    "degradation-dwell warmup)"
                ),
                "cores": cores,
                "uncontended_p99_ms": uncontended["p99_ms"],
                "overload_p99_ms": steady_stats["p99_ms"],
                "blowup": round(blowup, 3) if steady else None,
                "warmup_samples_excluded": len(accepted) - len(steady),
                "result": latency_gate,
            },
            "degradation": {
                "rule": (
                    "overload produces degraded responses and every one "
                    "carries the explicit marker (body + header)"
                ),
                "cores": cores,
                "degraded_count": len(degraded),
                "marker_consistent": marker_consistent,
                "result": degrade_gate,
            },
            "drain": {
                "rule": (
                    "drain with a frame in flight completes it (200) "
                    "and reports clean"
                ),
                "cores": cores,
                "inflight_status": drained_status,
                "result": drain_gate,
            },
        },
        "rows": rows,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"serving front end under load — K={PARAMS.n_superpixels}, "
        f"{config.n_workers} worker(s), max_queue={config.max_queue} "
        f"({bench_scale} scale, {cores} core(s) available)",
        "",
        f"  uncontended: p50 {uncontended['p50_ms']} ms, "
        f"p95 {uncontended['p95_ms']} ms, p99 {uncontended['p99_ms']} ms "
        f"({uncontended['rps']} rps)",
        f"  max sustained: {capacity_rps:.2f} rps (closed loop)",
        f"  overload ({offered_rps:.1f} rps offered, "
        f"{OVERLOAD_FACTOR}x capacity): "
        f"accepted p99 {steady_stats['p99_ms']} ms, "
        f"shed rate {shed_rate:.1%}, "
        f"{len(degraded)}/{len(accepted)} degraded",
        "",
        f"  gate shed:        {shed_gate} "
        f"(sheds={len(shed)}, peak_outstanding={peak_outstanding})",
        f"  gate latency:     {latency_gate} (blowup="
        f"{blowup if steady else 'n/a'})",
        f"  gate degradation: {degrade_gate} "
        f"(degraded={len(degraded)}, markers={marker_consistent})",
        f"  gate drain:       {drain_gate} (status={drained_status})",
        "",
        f"wrote {BENCH_JSON}",
    ]
    emit("bench_serve", "\n".join(lines), records=rows)

    assert shed_gate == "pass", payload["gate"]["shed"]
    assert latency_gate == "pass", payload["gate"]["latency"]
    assert degrade_gate == "pass", payload["gate"]["degradation"]
    assert drain_gate == "pass", payload["gate"]["drain"]
