"""Ablation D: the S-SLIC center-update semantics.

Section 4.3 is ambiguous about whether the sigma registers reset at every
subset pass or carry their accumulations across a full sweep ("The current
accumulations for the 9 SPs in the cluster update unit are loaded from the
center update unit"). This library implements three interpretations
(``SlicParams.center_update_mode``):

* ``accumulate`` — registers carry across a sweep (our default, the
  hardware-consistent reading): mid-sweep updates use the pixels seen so
  far, the sweep-final update equals a full SLIC update, so S-SLIC shares
  SLIC's fixed point;
* ``subset`` — pure OS-EM (reset each pass): centers jitter from subset
  sampling noise, costing a little converged quality;
* ``all_assigned`` — recompute from every pixel's stored label each pass:
  best quality but re-reads the whole frame per pass, destroying the
  bandwidth saving (hardware-infeasible reference).

This ablation justifies the default.
"""

import numpy as np

from repro.analysis import render_table
from repro.analysis.experiments import EVAL_COMPACTNESS, eval_dataset, _eval_k
from repro.core import sslic
from repro.metrics import undersegmentation_error

MODES = ("accumulate", "subset", "all_assigned")


def test_ablation_center_update_modes(benchmark, bench_scale, emit):
    dataset = eval_dataset(bench_scale)
    k = _eval_k(bench_scale)

    def run():
        out = {}
        for mode in MODES:
            uses = []
            for scene in dataset:
                result = sslic(
                    scene.image,
                    n_superpixels=k,
                    compactness=EVAL_COMPACTNESS,
                    subsample_ratio=0.25,
                    center_update_mode=mode,
                    max_iterations=8,
                    convergence_threshold=0.0,
                )
                uses.append(undersegmentation_error(result.labels, scene.gt_labels))
            out[mode] = float(np.mean(uses))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    bandwidth = {
        "accumulate": "1x (subset streaming only)",
        "subset": "1x (subset streaming only)",
        "all_assigned": "~5x (full-frame re-read per pass)",
    }
    rows = [[m, f"{results[m]:.4f}", bandwidth[m]] for m in MODES]
    emit(
        "ablation_center_update",
        render_table(
            ["center update mode", "USE (8 sweeps, ratio 0.25)", "relative DRAM cost"],
            rows,
            title="Ablation D: sigma-register semantics — all three "
                  "interpretations converge within noise; the hardware-"
                  "feasible ones do it at 1x bandwidth",
        ),
    )

    # The three interpretations must agree within a small band — the
    # robustness that makes the paper's ambiguity harmless — and the
    # hardware-feasible default must track the infeasible reference.
    vals = list(results.values())
    assert max(vals) - min(vals) < 0.02
    assert abs(results["accumulate"] - results["all_assigned"]) < 0.02
