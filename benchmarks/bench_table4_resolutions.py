"""Table 4: best accelerator configuration per resolution.

One cluster-update core, 9-9-6 ways, 8-bit datapath; 4 kB channel buffers
at 1080p, 1 kB at 1280x768 and VGA. Every column of the paper's Table 4 is
regenerated with the published value alongside.
"""

from repro.analysis import render_table, sweep_resolutions
from repro.hw import PAPER_TABLE4


def test_table4_best_configurations(benchmark, emit):
    reports = benchmark(sweep_resolutions)
    rows = []
    for name, r in reports.items():
        p = PAPER_TABLE4[name]
        rows.append(
            [
                name,
                f"{r.config.buffer_kb_per_channel:.0f} ({p['buffer_kb']})",
                f"{r.area_mm2:.3f} ({p['area_mm2']})",
                f"{r.power_mw:.0f} ({p['power_mw']})",
                f"{r.latency_ms:.1f} ({p['latency_ms']})",
                f"{r.fps:.1f} ({p['fps']})",
                f"{r.energy_per_frame_mj:.2f} ({p['energy_mj']})",
                f"{r.perf_per_area_fps_mm2:.0f} ({p['perf_per_area']})",
            ]
        )
    lines = [
        render_table(
            ["resolution", "buffer kB", "area mm2", "power mW", "latency ms",
             "fps", "mJ/frame", "fps/mm2"],
            rows,
            title="Table 4: best S-SLIC configurations — measured (paper)",
        )
    ]
    hd = reports["1920x1080"].latency
    lines.append(
        "1080p latency decomposition (paper Section 7: color 1.4 ms, cluster "
        "update 31.4 ms = 20.3 compute + 11.1 memory):\n"
        f"  color conversion {hd.color_conversion_ms:.1f} ms | cluster update "
        f"{hd.cluster_update_ms:.1f} ms (compute {hd.compute_ms:.1f} / memory "
        f"{hd.memory_ms:.1f})"
    )
    emit(
        "table4_resolutions",
        "\n".join(lines),
        records=[
            {
                "resolution": name,
                "buffer_kb": r.config.buffer_kb_per_channel,
                "area_mm2": r.area_mm2,
                "power_mw": r.power_mw,
                "latency_ms": r.latency_ms,
                "fps": r.fps,
                "energy_mj": r.energy_per_frame_mj,
                "perf_per_area": r.perf_per_area_fps_mm2,
                "paper": PAPER_TABLE4[name],
            }
            for name, r in reports.items()
        ],
    )

    for name, r in reports.items():
        assert r.real_time, name
        assert abs(r.latency_ms - PAPER_TABLE4[name]["latency_ms"]) < 0.03 * PAPER_TABLE4[name]["latency_ms"]
    fps_order = [reports[n].perf_per_area_fps_mm2 for n in ("640x480", "1280x768", "1920x1080")]
    assert fps_order[0] > fps_order[1] > fps_order[2]
