"""Serial-vs-parallel batch throughput scaling (the ISSUE 2 tentpole bench).

Runs the same 16-image synthetic batch through ``ParallelRunner`` at 1,
2, and 4 workers, records the scaling curve, and asserts the two hard
properties the parallel engine promises:

* **determinism** — every worker count produces bit-identical label maps
  and centers to the serial (1-worker) reference;
* **speedup** — 4 workers is at least 2x faster than serial, asserted
  whenever the machine actually exposes >= 4 CPU cores (the container
  this repo's quick CI runs in may expose a single core; the scaling
  rows are still recorded there, and the artifact notes why the
  assertion was skipped).
"""

import os
import time

import numpy as np
import pytest

from repro.core import SlicParams
from repro.parallel import ParallelRunner, synthetic_batch

pytestmark = pytest.mark.slow

BATCH_SIZE = 16
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.0
SPEEDUP_WORKERS = 4


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_batch_throughput_scaling(emit, bench_scale):
    size = dict(height=120, width=160) if bench_scale == "quick" else dict(
        height=240, width=320
    )
    params = SlicParams(
        n_superpixels=150,
        max_iterations=5,
        convergence_threshold=0.0,  # fixed work per frame -> fair scaling
        subsample_ratio=0.5,
    )
    images = synthetic_batch(BATCH_SIZE, seed=11, **size)

    rows = []
    reference = None
    for workers in WORKER_COUNTS:
        runner = ParallelRunner(params, n_workers=workers)
        start = time.perf_counter()
        batch = runner.run_batch(images)
        elapsed = time.perf_counter() - start
        assert batch.n_failed == 0
        assert batch.n_frames == BATCH_SIZE
        if reference is None:
            reference = batch
            serial_s = elapsed
        else:
            # Determinism invariant: parallel output is bit-identical to
            # the serial reference for the same seeds and params.
            for a, b in zip(reference.records, batch.records):
                assert a.key == b.key
                assert np.array_equal(a.result.labels, b.result.labels)
                assert np.array_equal(a.result.centers, b.result.centers)
        rows.append(
            {
                "workers": workers,
                "elapsed_s": round(elapsed, 4),
                "fps": round(batch.n_ok / elapsed, 3),
                "speedup": round(serial_s / elapsed, 3),
                "max_in_flight": batch.max_in_flight,
            }
        )

    cores = _available_cores()
    by_workers = {r["workers"]: r for r in rows}
    speedup4 = by_workers[SPEEDUP_WORKERS]["speedup"]
    gate = cores >= SPEEDUP_WORKERS
    if gate:
        assert speedup4 >= SPEEDUP_FLOOR, (
            f"{SPEEDUP_WORKERS} workers only {speedup4:.2f}x faster than "
            f"serial on {cores} cores (floor {SPEEDUP_FLOOR}x)"
        )

    lines = [
        f"batch throughput scaling — {BATCH_SIZE} x "
        f"{size['width']}x{size['height']} synthetic frames, "
        f"K={params.n_superpixels}, {params.max_iterations} sweeps "
        f"({bench_scale} scale, {cores} core(s) available)",
        "",
        f"{'workers':>8} {'elapsed':>9} {'fps':>8} {'speedup':>8}",
    ]
    for r in rows:
        lines.append(
            f"{r['workers']:>8} {r['elapsed_s']:>8.2f}s {r['fps']:>8.2f} "
            f"{r['speedup']:>7.2f}x"
        )
    lines.append("")
    lines.append("determinism: all worker counts bit-identical to serial: yes")
    if gate:
        lines.append(
            f"speedup gate: {SPEEDUP_WORKERS} workers >= {SPEEDUP_FLOOR}x: "
            f"PASS ({speedup4:.2f}x)"
        )
    else:
        lines.append(
            f"speedup gate: SKIPPED — only {cores} core(s) available, "
            f"needs >= {SPEEDUP_WORKERS} for a meaningful {SPEEDUP_FLOOR}x "
            f"assertion"
        )
    emit(
        "bench_batch_throughput",
        "\n".join(lines),
        records=[dict(r, cores=cores, gate="pass" if gate else "skipped")
                 for r in rows],
    )
