"""Table 2: CPA vs PPA per-iteration memory traffic and operation count.

Paper (1080p): CPA 318 MB + 58 M ops; PPA 100 MB + 130 M ops — PPA trades
2.25x more arithmetic for ~3x less DRAM traffic, and the Section 4.2
energy model (DRAM byte = 2500x an 8-bit add) therefore selects PPA.
"""

from repro.analysis import render_table
from repro.hw import PAPER_TABLE2, compare_architectures


def test_table2_architecture_comparison(benchmark, emit):
    cmp = benchmark(compare_architectures)
    rows = []
    for key, profile in (("CPA", cmp["cpa"]), ("PPA", cmp["ppa"])):
        rows.append(
            [
                key,
                f"{profile.memory_mb_per_iteration:.0f}",
                f"{PAPER_TABLE2[key]['memory_mb']:.0f}",
                f"{profile.ops_per_iteration / 1e6:.0f}",
                f"{PAPER_TABLE2[key]['ops_m']:.0f}",
                f"{profile.energy_per_iteration_pj() / 1e6:.0f}",
            ]
        )
    table = render_table(
        ["arch", "MB/iter", "MB (paper)", "Mops/iter", "Mops (paper)",
         "energy uJ (simple model)"],
        rows,
        title="Table 2: CPA vs PPA per 1080p iteration (K=5000)",
    )
    verdict = (
        f"bandwidth ratio CPA/PPA = {cmp['bandwidth_ratio_cpa_over_ppa']:.2f} "
        f"(paper ~3.2x); ops ratio PPA/CPA = {cmp['ops_ratio_ppa_over_cpa']:.2f} "
        f"(paper 2.25x); energy model selects {cmp['selected']} (paper: PPA)"
    )
    emit("table2_cpa_ppa", table + "\n" + verdict)

    assert cmp["selected"] == "PPA"
    assert 2.9 < cmp["bandwidth_ratio_cpa_over_ppa"] < 3.5
    assert 2.1 < cmp["ops_ratio_ppa_over_cpa"] < 2.4
