"""Software kernel throughput: the pytest-benchmark timing suite proper.

Times the library's hot paths (color conversion, one PPA assignment pass,
one CPA sweep, a full S-SLIC run) so performance regressions in the
vectorized kernels are visible. These are the kernels whose *relative*
costs drive the Table 1 breakdown.
"""

import numpy as np
import pytest

from repro.color import HwColorConverter, rgb_to_lab
from repro.core import (
    SlicParams,
    candidate_map,
    grid_geometry,
    initial_centers,
    slic,
    spatial_weight,
    sslic,
    tile_map,
)
from repro.core.assignment import PixelArrays, assign_ppa
from repro.data import SceneConfig, generate_scene


@pytest.fixture(scope="module")
def frame():
    scene = generate_scene(
        SceneConfig(height=240, width=320, n_regions=18, n_disks=3), seed=21
    )
    return scene.image


def test_throughput_color_conversion_reference(benchmark, frame):
    benchmark(rgb_to_lab, frame)


def test_throughput_color_conversion_lut(benchmark, frame):
    converter = HwColorConverter()
    benchmark(converter.convert_codes, frame)


def test_throughput_ppa_assignment_pass(benchmark, frame):
    lab = rgb_to_lab(frame)
    h, w = lab.shape[:2]
    k = 300
    centers = initial_centers(lab, k)
    gh, gw, _, _ = grid_geometry((h, w), k)
    tiles = tile_map((h, w), gh, gw)
    cands = candidate_map(gh, gw)
    pixels = PixelArrays(lab, tiles)
    idx = np.arange(pixels.n_pixels)
    weight = spatial_weight(10.0, float(np.sqrt(h * w / len(centers))))
    benchmark(assign_ppa, pixels, idx, cands, centers, weight)


def test_throughput_slic_full_run(benchmark, frame):
    params = SlicParams(n_superpixels=300, max_iterations=5, convergence_threshold=0.0)
    benchmark.pedantic(lambda: slic(frame, params), rounds=3, iterations=1)


def test_throughput_sslic_full_run(benchmark, frame):
    params = SlicParams(
        n_superpixels=300, max_iterations=5, convergence_threshold=0.0,
        subsample_ratio=0.5,
    )
    benchmark.pedantic(lambda: sslic(frame, params), rounds=3, iterations=1)
