"""Fig 2: undersegmentation error / boundary recall versus runtime.

Regenerates both panels of the paper's Figure 2 on the synthetic corpus:
three curves (SLIC, S-SLIC(0.5), S-SLIC(0.25)) of quality against wall
time, plus the headline crossover numbers ("S-SLIC achieves the same USE
of SLIC in a 25% shorter time"; "for the same boundary recall, S-SLIC(0.5)
has a 15% shorter execution time"). Savings are reported on both the wall
-clock axis (the paper's) and the deterministic work axis.
"""

import math

from repro.analysis import render_table, run_experiment
from repro.viz import ascii_xy_plot


def _fmt_saving(v: float) -> str:
    return "unreached" if (v is None or math.isnan(v)) else f"{100 * v:+.1f}%"


def test_fig2_quality_vs_runtime(benchmark, bench_scale, emit):
    result = benchmark.pedantic(
        lambda: run_experiment("fig2", bench_scale), rounds=1, iterations=1
    )
    lines = [render_table(result.headers, result.rows, title=result.title, precision=4)]

    curves = result.extras["curves"]
    lines.append(
        ascii_xy_plot(
            {name: (c.times_ms, c.uses) for name, c in curves.items()},
            x_label="time (ms)",
            y_label="USE",
            title="Fig 2a: undersegmentation error vs runtime",
        )
    )
    lines.append(
        ascii_xy_plot(
            {name: (c.times_ms, c.recalls) for name, c in curves.items()},
            x_label="time (ms)",
            y_label="boundary recall",
            title="Fig 2b: boundary recall vs runtime",
        )
    )

    savings = result.extras["savings"]
    rows = [
        [
            name,
            _fmt_saving(s["use"]),
            _fmt_saving(s["use_work"]),
            _fmt_saving(s["recall"]),
            _fmt_saving(s["recall_work"]),
        ]
        for name, s in savings.items()
    ]
    lines.append(
        render_table(
            ["variant", "USE saving (time)", "USE saving (work)",
             "recall saving (time)", "recall saving (work)"],
            rows,
            title=(
                "Crossover savings vs SLIC  "
                "(paper: ~25% USE / ~15% recall for the S-SLIC variants)"
            ),
        )
    )
    lines.append(result.notes)
    emit("fig2_quality_tradeoff", "\n".join(lines))

    # Shape assertions: every variant's USE must improve over its first
    # point, and some S-SLIC variant must reach SLIC-level quality with a
    # positive work saving.
    for curve in curves.values():
        assert curve.uses[-1] < curve.uses[0]
    assert any(
        s["use_work"] is not None and not math.isnan(s["use_work"]) and s["use_work"] > 0
        for s in savings.values()
    )
